//! In-enclave execution of provisioned client code.
//!
//! After EnGarde's inspection "the enclave can be accessed and executed
//! as on traditional SGX platforms" (paper §3). This module closes that
//! loop: an interpreter over the decoder's [`InsnKind`] that executes
//! the mapped client code against the simulated machine's enclave
//! memory. It exists to *prove the product is real*:
//!
//! - the loader/relocation output actually runs (calls resolve, the
//!   relocated entry is executable),
//! - the W^X permissions the host installed are enforced at runtime
//!   (writes to code pages fault, execution from data pages faults),
//! - the stack-protector instrumentation the policies verified — and
//!   the rewriter inserted — actually catches stack smashes: a
//!   corrupted canary diverts control to `__stack_chk_fail`.
//!
//! The interpreter covers exactly the instruction repertoire the
//! workload generator and rewriter emit; anything else faults with a
//! precise address, which is the honest behaviour for a simulator.

use crate::error::EngardeError;
use engarde_sgx::epc::PAGE_SIZE;
use engarde_sgx::machine::{EnclaveId, SgxMachine};
use engarde_x86::decode::decode_one;
use engarde_x86::insn::{AluOp, Cc, InsnKind, MemOperand, Width};
use engarde_x86::reg::Reg;
use std::collections::HashMap;

/// Base of the simulated stack (grows down).
pub const STACK_TOP: u64 = 0x7000_0000;
/// Stack size in bytes.
pub const STACK_BYTES: usize = 512 * 1024;
/// Sentinel return address: `ret`ing here ends execution.
const EXIT_SENTINEL: u64 = 0xE417_0000_0000;

/// Why execution stopped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExitReason {
    /// The entry function returned normally.
    Returned,
    /// Control reached `__stack_chk_fail` — a stack smash was caught by
    /// the instrumentation the policy demanded.
    CanaryFailure {
        /// Address of the call site that detected the smash.
        from: u64,
    },
    /// The instruction budget ran out (the program may simply be long).
    BudgetExhausted,
    /// A machine-level fault.
    Fault {
        /// Instruction address at fault time.
        at: u64,
        /// Human-readable description.
        what: String,
    },
}

/// The result of an execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecOutcome {
    /// Why execution stopped.
    pub exit: ExitReason,
    /// Instructions executed.
    pub instructions: u64,
    /// Deepest call-stack depth observed.
    pub max_call_depth: usize,
}

/// Execution parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Instruction budget.
    pub max_instructions: u64,
    /// The canary value at `%fs:0x28`.
    pub canary: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_instructions: 2_000_000,
            canary: 0x5AFE_C0DE_5AFE_C0DE,
        }
    }
}

/// CPU state of the interpreted thread.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// The sixteen general-purpose registers, indexed by encoding.
    pub regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Operands of the last `cmp` (lhs, rhs, width) for `jcc`.
    last_cmp: Option<(u64, u64, Width)>,
}

impl Cpu {
    fn get(&self, r: Reg) -> u64 {
        self.regs[r as usize]
    }

    fn set(&mut self, r: Reg, v: u64) {
        self.regs[r as usize] = v;
    }

    fn set_w(&mut self, r: Reg, v: u64, w: Width) {
        // 32-bit writes zero-extend; 8/16-bit writes merge (x86
        // semantics).
        let old = self.regs[r as usize];
        self.regs[r as usize] = match w {
            Width::W64 => v,
            Width::W32 => v & 0xffff_ffff,
            Width::W16 => (old & !0xffff) | (v & 0xffff),
            Width::W8 => (old & !0xff) | (v & 0xff),
        };
    }
}

/// The interpreter.
pub struct Executor<'m> {
    machine: &'m mut SgxMachine,
    enclave: EnclaveId,
    stack: Vec<u8>,
    page_cache: HashMap<u64, Vec<u8>>,
    stack_chk_fail: Option<u64>,
    code_page_trace: Vec<u64>,
    secret_ranges: Vec<(u64, u64)>,
    secret_read_trace: Vec<u64>,
}

impl<'m> std::fmt::Debug for Executor<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Executor(enclave={})", self.enclave)
    }
}

impl<'m> Executor<'m> {
    /// Creates an executor for client code mapped into `enclave`.
    /// `stack_chk_fail` is the mapped address of `__stack_chk_fail`
    /// (execution entering it reports [`ExitReason::CanaryFailure`]).
    pub fn new(
        machine: &'m mut SgxMachine,
        enclave: EnclaveId,
        stack_chk_fail: Option<u64>,
    ) -> Self {
        Executor {
            machine,
            enclave,
            stack: vec![0u8; STACK_BYTES],
            page_cache: HashMap::new(),
            stack_chk_fail,
            code_page_trace: Vec::new(),
            secret_ranges: Vec::new(),
            secret_read_trace: Vec::new(),
        }
    }

    /// Registers `[start, end)` ranges whose runtime reads should be
    /// recorded in [`secret_read_trace`](Self::secret_read_trace) —
    /// the dynamic counterpart of the static taint pass's source list,
    /// used by tests to confirm a flagged binary really touches the
    /// secret it is accused of leaking.
    pub fn watch_secret_ranges(&mut self, ranges: &[crate::analysis::SecretRange]) {
        self.secret_ranges
            .extend(ranges.iter().map(|r| (r.start, r.end)));
    }

    /// Addresses of runtime reads that overlapped a watched secret
    /// range, in order (consecutive duplicates collapsed, mirroring
    /// [`code_page_trace`](Self::code_page_trace)).
    pub fn secret_read_trace(&self) -> &[u64] {
        &self.secret_read_trace
    }

    /// The sequence of distinct code pages control flow entered, in
    /// order — exactly what a malicious OS observes through page-fault
    /// manipulation (the controlled-channel attack of Xu et al., which
    /// the paper explicitly does **not** defend against: "Intel SGX does
    /// not protect applications against side-channel attacks and
    /// EnGarde also does not attempt to eliminate this attack vector",
    /// §6). Exposed so tests can demonstrate the leak.
    pub fn code_page_trace(&self) -> &[u64] {
        &self.code_page_trace
    }

    fn stack_range(&self) -> (u64, u64) {
        (STACK_TOP - STACK_BYTES as u64, STACK_TOP)
    }

    fn read_mem(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, String> {
        if self
            .secret_ranges
            .iter()
            .any(|&(s, e)| addr < e && addr + len as u64 > s)
            && self.secret_read_trace.last() != Some(&addr)
        {
            self.secret_read_trace.push(addr);
        }
        let (lo, hi) = self.stack_range();
        if addr >= lo && addr + len as u64 <= hi {
            let off = (addr - lo) as usize;
            return Ok(self.stack[off..off + len].to_vec());
        }
        // Enclave memory, through a local decrypted-page cache (the
        // interpreted thread runs inside the enclave).
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = a & !(PAGE_SIZE as u64 - 1);
            if !self.page_cache.contains_key(&page) {
                let data = self
                    .machine
                    .enclave_read(self.enclave, page, PAGE_SIZE)
                    .map_err(|e| format!("read fault at {a:#x}: {e}"))?;
                self.page_cache.insert(page, data);
            }
            let cached = &self.page_cache[&page];
            let off = (a - page) as usize;
            let take = remaining.min(PAGE_SIZE - off);
            out.extend_from_slice(&cached[off..off + take]);
            a += take as u64;
            remaining -= take;
        }
        Ok(out)
    }

    fn write_mem(&mut self, addr: u64, data: &[u8]) -> Result<(), String> {
        let (lo, hi) = self.stack_range();
        if addr >= lo && addr + data.len() as u64 <= hi {
            let off = (addr - lo) as usize;
            self.stack[off..off + data.len()].copy_from_slice(data);
            return Ok(());
        }
        // Enclave memory: the machine enforces EPCM write permissions,
        // so W^X violations surface here as faults.
        self.machine
            .enclave_write(self.enclave, addr, data)
            .map_err(|e| format!("write fault at {addr:#x}: {e}"))?;
        // Keep the cache coherent.
        let mut a = addr;
        let mut off = 0usize;
        while off < data.len() {
            let page = a & !(PAGE_SIZE as u64 - 1);
            if let Some(cached) = self.page_cache.get_mut(&page) {
                let po = (a - page) as usize;
                let take = (data.len() - off).min(PAGE_SIZE - po);
                cached[po..po + take].copy_from_slice(&data[off..off + take]);
                a += take as u64;
                off += take;
            } else {
                let take = (data.len() - off).min(PAGE_SIZE - (a - page) as usize);
                a += take as u64;
                off += take;
            }
        }
        Ok(())
    }

    fn read_u64(&mut self, addr: u64) -> Result<u64, String> {
        let b = self.read_mem(addr, 8)?;
        let b: [u8; 8] = b
            .try_into()
            .map_err(|_| format!("short read at {addr:#x}: expected 8 bytes"))?;
        Ok(u64::from_le_bytes(b))
    }

    fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), String> {
        self.write_mem(addr, &v.to_le_bytes())
    }

    fn effective_addr(cpu: &Cpu, mem: &MemOperand) -> Result<u64, String> {
        if mem.rip_relative {
            return Err("unexpected RIP-relative data access".into());
        }
        let mut addr = mem.disp as i64 as u64;
        if let Some(b) = mem.base {
            addr = addr.wrapping_add(cpu.get(b));
        }
        if let Some(i) = mem.index {
            addr = addr.wrapping_add(cpu.get(i).wrapping_mul(mem.scale as u64));
        }
        Ok(addr)
    }

    fn width_bytes(w: Width) -> usize {
        match w {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    fn read_w(&mut self, addr: u64, w: Width) -> Result<u64, String> {
        let b = self.read_mem(addr, Self::width_bytes(w))?;
        let mut buf = [0u8; 8];
        buf[..b.len()].copy_from_slice(&b);
        Ok(u64::from_le_bytes(buf))
    }

    fn write_w(&mut self, addr: u64, v: u64, w: Width) -> Result<(), String> {
        self.write_mem(addr, &v.to_le_bytes()[..Self::width_bytes(w)])
    }

    fn alu(op: AluOp, a: u64, b: u64, w: Width) -> u64 {
        let r = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub | AluOp::Cmp => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Adc => a.wrapping_add(b), // carry untracked; unused
            AluOp::Sbb => a.wrapping_sub(b),
        };
        match w {
            Width::W64 => r,
            Width::W32 => r & 0xffff_ffff,
            Width::W16 => r & 0xffff,
            Width::W8 => r & 0xff,
        }
    }

    fn cond(cpu: &Cpu, cc: Cc) -> Result<bool, String> {
        let Some((l, r, w)) = cpu.last_cmp else {
            return Err("conditional jump without a preceding cmp".into());
        };
        let (sl, sr) = match w {
            Width::W64 => (l as i64, r as i64),
            Width::W32 => (l as u32 as i32 as i64, r as u32 as i32 as i64),
            Width::W16 => (l as u16 as i16 as i64, r as u16 as i16 as i64),
            Width::W8 => (l as u8 as i8 as i64, r as u8 as i8 as i64),
        };
        Ok(match cc {
            Cc::E => l == r,
            Cc::Ne => l != r,
            Cc::B => l < r,
            Cc::Ae => l >= r,
            Cc::Be => l <= r,
            Cc::A => l > r,
            Cc::L => sl < sr,
            Cc::Ge => sl >= sr,
            Cc::Le => sl <= sr,
            Cc::G => sl > sr,
            Cc::S => sl.wrapping_sub(sr) < 0,
            Cc::Ns => sl.wrapping_sub(sr) >= 0,
            Cc::O | Cc::No | Cc::P | Cc::Np => {
                return Err(format!("unsupported condition {cc:?}"));
            }
        })
    }

    /// Checks that the page backing `addr` is executable.
    fn check_exec(&self, addr: u64) -> Result<(), String> {
        let page = addr & !(PAGE_SIZE as u64 - 1);
        match self.machine.epcm_perms(self.enclave, page) {
            Some(p) if p.x => Ok(()),
            Some(p) => Err(format!(
                "executing {addr:#x} on a {p} page (W^X enforced at runtime)"
            )),
            None => Err(format!("executing unmapped address {addr:#x}")),
        }
    }

    /// Runs from `entry` until return, fault, canary failure, or budget
    /// exhaustion.
    ///
    /// # Errors
    ///
    /// Only machine-level protocol errors (bad enclave id) surface as
    /// `Err`; program-level failures are reported in the outcome.
    pub fn run(&mut self, entry: u64, config: &ExecConfig) -> Result<ExecOutcome, EngardeError> {
        let mut cpu = Cpu {
            regs: [0u64; 16],
            rip: entry,
            last_cmp: None,
        };
        cpu.set(Reg::Rsp, STACK_TOP - 4096);
        // Push the exit sentinel as the return address.
        let rsp = cpu.get(Reg::Rsp) - 8;
        cpu.set(Reg::Rsp, rsp);
        self.write_u64(rsp, EXIT_SENTINEL)
            .map_err(|what| EngardeError::Protocol { what })?;

        let mut executed = 0u64;
        let mut depth = 1usize;
        let mut max_depth = 1usize;
        let fault = |at: u64, what: String, executed: u64, max_depth: usize| ExecOutcome {
            exit: ExitReason::Fault { at, what },
            instructions: executed,
            max_call_depth: max_depth,
        };

        loop {
            if executed >= config.max_instructions {
                return Ok(ExecOutcome {
                    exit: ExitReason::BudgetExhausted,
                    instructions: executed,
                    max_call_depth: max_depth,
                });
            }
            if let Some(chk) = self.stack_chk_fail {
                if cpu.rip == chk {
                    return Ok(ExecOutcome {
                        exit: ExitReason::CanaryFailure { from: cpu.rip },
                        instructions: executed,
                        max_call_depth: max_depth,
                    });
                }
            }
            if let Err(what) = self.check_exec(cpu.rip) {
                return Ok(fault(cpu.rip, what, executed, max_depth));
            }
            // Page-granular control-flow trace (the host's side channel).
            let rip_page = cpu.rip & !(PAGE_SIZE as u64 - 1);
            if self.code_page_trace.last() != Some(&rip_page) {
                self.code_page_trace.push(rip_page);
            }
            let bytes = match self.read_mem(cpu.rip, 15) {
                Ok(b) => b,
                Err(what) => return Ok(fault(cpu.rip, what, executed, max_depth)),
            };
            let insn = match decode_one(&bytes, cpu.rip) {
                Ok(i) => i,
                Err(e) => {
                    return Ok(fault(
                        cpu.rip,
                        format!("decode fault: {e}"),
                        executed,
                        max_depth,
                    ))
                }
            };
            executed += 1;
            let next = cpu.rip + insn.len as u64;
            cpu.rip = next;

            let step: Result<(), String> = (|| {
                match insn.kind {
                    InsnKind::Nop => {}
                    InsnKind::MovRegToReg { dest, src, width } => {
                        let v = cpu.get(src);
                        cpu.set_w(dest, v, width);
                    }
                    InsnKind::MovImmToReg { dest, imm, width } => {
                        cpu.set_w(dest, imm as u64, width);
                    }
                    InsnKind::MovFsToReg { dest, fs_offset } => {
                        if fs_offset != 0x28 {
                            return Err(format!("unmodelled %fs offset {fs_offset:#x}"));
                        }
                        cpu.set(dest, config.canary);
                    }
                    InsnKind::MovRegToMem { src, mem, width } => {
                        let addr = Self::effective_addr(&cpu, &mem)?;
                        self.write_w(addr, cpu.get(src), width)?;
                    }
                    InsnKind::MovMemToReg { dest, mem, width } => {
                        let addr = Self::effective_addr(&cpu, &mem)?;
                        let v = self.read_w(addr, width)?;
                        cpu.set_w(dest, v, width);
                    }
                    InsnKind::MovImmToMem { mem, imm, width } => {
                        let addr = Self::effective_addr(&cpu, &mem)?;
                        self.write_w(addr, imm as u64, width)?;
                    }
                    InsnKind::Lea { dest, mem } => {
                        let addr = Self::effective_addr(&cpu, &mem)?;
                        cpu.set(dest, addr);
                    }
                    InsnKind::LeaRipRel { dest, target } => {
                        cpu.set(dest, target);
                    }
                    InsnKind::AluRegReg {
                        op,
                        dest,
                        src,
                        width,
                    } => {
                        let (a, b) = (cpu.get(dest), cpu.get(src));
                        if op == AluOp::Cmp {
                            cpu.last_cmp = Some((a, b, width));
                        } else {
                            cpu.set_w(dest, Self::alu(op, a, b, width), width);
                        }
                    }
                    InsnKind::AluImmReg {
                        op,
                        dest,
                        imm,
                        width,
                    } => {
                        let a = cpu.get(dest);
                        if op == AluOp::Cmp {
                            cpu.last_cmp = Some((a, imm as u64, width));
                        } else {
                            cpu.set_w(dest, Self::alu(op, a, imm as u64, width), width);
                        }
                    }
                    InsnKind::AluMemReg {
                        op,
                        dest,
                        mem,
                        width,
                    } => {
                        let addr = Self::effective_addr(&cpu, &mem)?;
                        let m = self.read_w(addr, width)?;
                        let a = cpu.get(dest);
                        if op == AluOp::Cmp {
                            cpu.last_cmp = Some((a, m, width));
                        } else {
                            cpu.set_w(dest, Self::alu(op, a, m, width), width);
                        }
                    }
                    InsnKind::AluRegMem {
                        op,
                        mem,
                        src,
                        width,
                    } => {
                        let addr = Self::effective_addr(&cpu, &mem)?;
                        let m = self.read_w(addr, width)?;
                        let b = cpu.get(src);
                        if op == AluOp::Cmp {
                            cpu.last_cmp = Some((m, b, width));
                        } else {
                            self.write_w(addr, Self::alu(op, m, b, width), width)?;
                        }
                    }
                    InsnKind::AluImmMem {
                        op,
                        mem,
                        imm,
                        width,
                    } => {
                        let addr = Self::effective_addr(&cpu, &mem)?;
                        let m = self.read_w(addr, width)?;
                        if op == AluOp::Cmp {
                            cpu.last_cmp = Some((m, imm as u64, width));
                        } else {
                            self.write_w(addr, Self::alu(op, m, imm as u64, width), width)?;
                        }
                    }
                    InsnKind::PushReg { reg } => {
                        let v = cpu.get(reg);
                        let rsp = cpu.get(Reg::Rsp) - 8;
                        cpu.set(Reg::Rsp, rsp);
                        self.write_u64(rsp, v)?;
                    }
                    InsnKind::PopReg { reg } => {
                        let rsp = cpu.get(Reg::Rsp);
                        let v = self.read_u64(rsp)?;
                        cpu.set(Reg::Rsp, rsp + 8);
                        cpu.set(reg, v);
                    }
                    InsnKind::DirectCall { target } => {
                        let rsp = cpu.get(Reg::Rsp) - 8;
                        cpu.set(Reg::Rsp, rsp);
                        self.write_u64(rsp, next)?;
                        cpu.rip = target;
                        depth += 1;
                        max_depth = max_depth.max(depth);
                    }
                    InsnKind::IndirectCallReg { reg } => {
                        let target = cpu.get(reg);
                        let rsp = cpu.get(Reg::Rsp) - 8;
                        cpu.set(Reg::Rsp, rsp);
                        self.write_u64(rsp, next)?;
                        cpu.rip = target;
                        depth += 1;
                        max_depth = max_depth.max(depth);
                    }
                    InsnKind::Ret => {
                        if insn.imm_len != 0 {
                            return Err("ret imm16 is not modelled".into());
                        }
                        let rsp = cpu.get(Reg::Rsp);
                        let ra = self.read_u64(rsp)?;
                        cpu.set(Reg::Rsp, rsp + 8);
                        cpu.rip = ra;
                        depth = depth.saturating_sub(1);
                    }
                    InsnKind::DirectJmp { target } => {
                        cpu.rip = target;
                    }
                    InsnKind::CondJmp { cc, target } => {
                        if Self::cond(&cpu, cc)? {
                            cpu.rip = target;
                        }
                    }
                    InsnKind::IndirectJmpReg { reg } => {
                        cpu.rip = cpu.get(reg);
                    }
                    k => return Err(format!("unmodelled instruction {k:?}")),
                }
                Ok(())
            })();
            if let Err(what) = step {
                return Ok(fault(insn.addr, what, executed, max_depth));
            }
            if cpu.rip == EXIT_SENTINEL {
                return Ok(ExecOutcome {
                    exit: ExitReason::Returned,
                    instructions: executed,
                    max_call_depth: max_depth,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load, LoaderConfig};
    use crate::relocate::map_and_relocate;
    use engarde_elf::build::ElfBuilder;
    use engarde_sgx::epc::PagePerms;
    use engarde_sgx::instr::SgxVersion;
    use engarde_sgx::machine::MachineConfig;
    use engarde_x86::encode::Assembler;

    const ENCLAVE_BASE: u64 = 0x100000;
    const REGION_PAGES: usize = 96;

    /// Provisions `image` into a fresh enclave (load → map → finalize
    /// perms) and returns what execution needs.
    fn provision(image: &[u8]) -> (SgxMachine, EnclaveId, u64, Option<u64>) {
        let mut m = SgxMachine::new(MachineConfig {
            epc_pages: 512,
            version: SgxVersion::V2,
            device_key_bits: 512,
            seed: 0xE4EC,
        });
        let region_base = ENCLAVE_BASE + PAGE_SIZE as u64;
        let size = ((1 + REGION_PAGES) * PAGE_SIZE) as u64;
        let id = m.ecreate(ENCLAVE_BASE, size).expect("ecreate");
        m.eadd(id, ENCLAVE_BASE, b"engarde", PagePerms::RWX)
            .expect("eadd");
        m.eextend(id, ENCLAVE_BASE).expect("eextend");
        for p in 0..REGION_PAGES {
            let va = region_base + (p * PAGE_SIZE) as u64;
            m.eadd(id, va, &[], PagePerms::RWX).expect("region");
            m.eextend(id, va).expect("eextend");
        }
        m.einit(id).expect("einit");
        m.eenter(id).expect("enter");
        let loaded = load(&mut m, id, image, &LoaderConfig::default()).expect("loads");
        let mapping = map_and_relocate(
            &mut m,
            id,
            &loaded.elf,
            &loaded.raw_image,
            region_base,
            REGION_PAGES,
        )
        .expect("maps");
        // Lock permissions the way the host does after a verdict.
        for &page in &mapping.exec_pages {
            m.emodpr(id, page, PagePerms::RX).expect("emodpr");
            m.eaccept(id, page).expect("eaccept");
        }
        for &page in &mapping.rw_pages {
            m.emodpr(id, page, PagePerms::RW).expect("emodpr");
            m.eaccept(id, page).expect("eaccept");
        }
        let chk = loaded
            .symbols
            .addr_of("__stack_chk_fail")
            .map(|a| region_base + a);
        (m, id, mapping.entry, chk)
    }

    #[test]
    fn hand_written_function_computes_and_returns() {
        // f: rax = 2 + 3; uses a stack slot; returns.
        let mut asm = Assembler::new();
        asm.push_reg(Reg::Rbp);
        asm.mov_rr64(Reg::Rbp, Reg::Rsp);
        asm.mov_ri32(Reg::Rax, 2);
        asm.mov_ri32(Reg::Rcx, 3);
        asm.add_rr64(Reg::Rax, Reg::Rcx);
        asm.mov_reg_to_rbp_disp8(Reg::Rax, -8);
        asm.mov_rbp_disp8_to_reg(Reg::Rdx, -8);
        asm.pop_reg(Reg::Rbp);
        asm.ret();
        let text = asm.finish();
        let len = text.len() as u64;
        let image = ElfBuilder::new()
            .text(text)
            .function("f", 0, len)
            .entry(0)
            .build();
        let (mut m, id, entry, chk) = provision(&image);
        let mut exec = Executor::new(&mut m, id, chk);
        let out = exec.run(entry, &ExecConfig::default()).expect("runs");
        assert_eq!(out.exit, ExitReason::Returned, "{out:?}");
        assert!(out.instructions >= 9);
    }

    #[test]
    fn secret_reads_are_traced() {
        use crate::analysis::{SecretClass, SecretRange};
        // f: reads one qword from a fixed in-region address, twice (the
        // consecutive duplicate collapses), then an unwatched one.
        let watched = ENCLAVE_BASE + PAGE_SIZE as u64 + 0x40000;
        let mut asm = Assembler::new();
        asm.movabs(Reg::Rbx, watched);
        asm.mov_mem_to_reg64(Reg::Rax, Reg::Rbx);
        asm.mov_mem_to_reg64(Reg::Rcx, Reg::Rbx);
        asm.movabs(Reg::Rbx, watched + 0x100);
        asm.mov_mem_to_reg64(Reg::Rdx, Reg::Rbx);
        asm.ret();
        let text = asm.finish();
        let len = text.len() as u64;
        let image = ElfBuilder::new()
            .text(text)
            .function("f", 0, len)
            .entry(0)
            .build();
        let (mut m, id, entry, chk) = provision(&image);
        let mut exec = Executor::new(&mut m, id, chk);
        exec.watch_secret_ranges(&[SecretRange {
            start: watched,
            end: watched + 8,
            class: SecretClass::ChannelKey,
        }]);
        let out = exec.run(entry, &ExecConfig::default()).expect("runs");
        assert_eq!(out.exit, ExitReason::Returned, "{out:?}");
        assert_eq!(exec.secret_read_trace(), &[watched]);
    }

    #[test]
    fn protected_function_passes_canary_check_at_runtime() {
        use engarde_workloads::generator::{generate, WorkloadSpec};
        use engarde_workloads::libc::Instrumentation;
        let w = generate(&WorkloadSpec {
            target_instructions: 4_000,
            instrumentation: Instrumentation::StackProtector,
            libc_functions_used: 10,
            avg_app_fn_insns: 30,
            calls_per_app_fn: 1,
            ..WorkloadSpec::default()
        });
        let (mut m, id, entry, chk) = provision(&w.image);
        assert!(chk.is_some(), "protected build links __stack_chk_fail");
        let mut exec = Executor::new(&mut m, id, chk);
        let out = exec.run(entry, &ExecConfig::default()).expect("runs");
        assert_eq!(
            out.exit,
            ExitReason::Returned,
            "clean run must not trip the canary: {out:?}"
        );
        assert!(out.instructions > 100);
        assert!(out.max_call_depth >= 2);
    }

    #[test]
    fn smashed_canary_is_caught_at_runtime() {
        // A function that clobbers its own canary slot before the check —
        // a stack smash in miniature.
        let mut asm = Assembler::new();
        let fail = asm.label();
        let chk_fn = asm.label();
        asm.push_reg(Reg::Rbp);
        asm.mov_rr64(Reg::Rbp, Reg::Rsp);
        asm.sub_ri8(Reg::Rsp, 120);
        asm.mov_fs_to_reg(Reg::Rax, 0x28);
        asm.mov_reg_to_rsp(Reg::Rax); // canary store
        asm.mov_ri32(Reg::Rax, 0x41414141); // "AAAA..." overflow
        asm.mov_reg_to_rsp(Reg::Rax); // smashes the slot
        asm.mov_fs_to_reg(Reg::Rax, 0x28);
        asm.cmp_rsp_reg(Reg::Rax);
        asm.jne_label(fail);
        asm.add_ri8(Reg::Rsp, 120);
        asm.pop_reg(Reg::Rbp);
        asm.ret();
        asm.bind(fail);
        asm.call_label(chk_fn);
        asm.ret();
        asm.align_to(32);
        asm.bind(chk_fn);
        let chk_off = asm.label_offset(chk_fn).expect("bound");
        asm.ret();
        let text = asm.finish();
        let text_len = text.len() as u64;
        let image = ElfBuilder::new()
            .text(text)
            .function("main", 0, chk_off)
            .function("__stack_chk_fail", chk_off, text_len - chk_off)
            .entry(0)
            .build();
        let (mut m, id, entry, chk) = provision(&image);
        let mut exec = Executor::new(&mut m, id, chk);
        let out = exec.run(entry, &ExecConfig::default()).expect("runs");
        assert!(
            matches!(out.exit, ExitReason::CanaryFailure { .. }),
            "smash must be caught: {out:?}"
        );
    }

    #[test]
    fn rewritten_binary_executes_cleanly() {
        // The rewriter's instrumentation is not just pattern-correct: it
        // runs. Plain binary → rewrite → execute to completion.
        use crate::rewrite::StackProtectorRewriter;
        use engarde_workloads::generator::{generate, WorkloadSpec};
        let w = generate(&WorkloadSpec {
            target_instructions: 4_000,
            libc_functions_used: 10,
            avg_app_fn_insns: 30,
            calls_per_app_fn: 1,
            ..WorkloadSpec::default()
        });
        // Rewrite via a scratch load.
        let (mut scratch, sid, _, _) = provision(&w.image);
        let loaded = load(&mut scratch, sid, &w.image, &LoaderConfig::default()).expect("loads");
        let (new_image, report) = StackProtectorRewriter::new()
            .rewrite(&loaded)
            .expect("rewrites");
        assert!(report.functions_instrumented > 0);

        let (mut m, id, entry, chk) = provision(&new_image);
        let mut exec = Executor::new(&mut m, id, chk);
        let out = exec.run(entry, &ExecConfig::default()).expect("runs");
        assert_eq!(
            out.exit,
            ExitReason::Returned,
            "rewritten code must execute cleanly: {out:?}"
        );
    }

    #[test]
    fn wx_violation_faults_at_runtime() {
        // Code that tries to write to its own (sealed RX) code page.
        let mut asm = Assembler::new();
        asm.movabs(Reg::Rcx, 0); // patched below to the code address
        asm.mov_ri32(Reg::Rax, 0x90909090);
        // mov %rax, (%rcx): 48 89 01
        asm.emit_raw_insn(&[0x48, 0x89, 0x01]);
        asm.ret();
        let mut text = asm.finish();
        // Patch the movabs immediate with the mapped code address.
        let code_va = ENCLAVE_BASE + PAGE_SIZE as u64 + engarde_elf::build::TEXT_VADDR;
        text[2..10].copy_from_slice(&code_va.to_le_bytes());
        let len = text.len() as u64;
        let image = ElfBuilder::new()
            .text(text)
            .function("selfpatch", 0, len)
            .entry(0)
            .build();
        let (mut m, id, entry, chk) = provision(&image);
        let mut exec = Executor::new(&mut m, id, chk);
        let out = exec.run(entry, &ExecConfig::default()).expect("runs");
        match out.exit {
            ExitReason::Fault { what, .. } => {
                assert!(what.contains("write fault"), "{what}");
            }
            other => panic!("self-patching must fault, got {other:?}"),
        }
    }

    #[test]
    fn executing_data_pages_faults() {
        let mut asm = Assembler::new();
        // Jump into the data segment (no trailing code: the indirect
        // jmp ends the flow).
        asm.movabs(Reg::Rcx, 0); // patched below
        asm.emit_raw_insn(&[0xff, 0xe1]); // jmp *%rcx
        let mut text = asm.finish();
        let elf_probe = ElfBuilder::new()
            .text(text.clone())
            .data(vec![0x90; 64])
            .function("f", 0, text.len() as u64)
            .entry(0)
            .build();
        let parsed = engarde_elf::parse::ElfFile::parse(&elf_probe).expect("parses");
        let data_va = parsed.section(".data").expect(".data").header.sh_addr;
        let mapped_data = ENCLAVE_BASE + PAGE_SIZE as u64 + data_va;
        text[2..10].copy_from_slice(&mapped_data.to_le_bytes());
        let len = text.len() as u64;
        let image = ElfBuilder::new()
            .text(text)
            .data(vec![0x90; 64])
            .function("f", 0, len)
            .entry(0)
            .build();
        let (mut m, id, entry, chk) = provision(&image);
        let mut exec = Executor::new(&mut m, id, chk);
        let out = exec.run(entry, &ExecConfig::default()).expect("runs");
        match out.exit {
            ExitReason::Fault { what, .. } => {
                assert!(what.contains("W^X") || what.contains("rw-"), "{what}");
            }
            other => panic!("executing data must fault, got {other:?}"),
        }
    }

    #[test]
    fn page_trace_leaks_control_flow_to_the_host() {
        // The controlled-channel non-goal, demonstrated: two entry
        // points exercising different functions produce distinguishable
        // page-access traces, so a malicious OS learns which code ran
        // even though it cannot read any of it.
        let mut asm = Assembler::new();
        let far_fn = asm.label();
        // entry_a (offset 0): returns immediately.
        asm.ret();
        // entry_b: calls a function on a distant page.
        asm.align_to(32);
        let entry_b = asm.offset();
        asm.call_label(far_fn);
        asm.ret();
        // Pad far away so the callee lives on another page.
        while asm.offset() < 3 * PAGE_SIZE as u64 {
            asm.nop();
        }
        asm.bind(far_fn);
        asm.ret();
        let text = asm.finish();
        let text_len = text.len() as u64;
        let image = ElfBuilder::new()
            .text(text)
            .function("entry_a", 0, entry_b)
            .function("entry_b", entry_b, 3 * PAGE_SIZE as u64 - entry_b)
            .function(
                "far_fn",
                3 * PAGE_SIZE as u64,
                text_len - 3 * PAGE_SIZE as u64,
            )
            .entry(0)
            .build();
        let (mut m, id, entry, chk) = provision(&image);

        let mut exec_a = Executor::new(&mut m, id, chk);
        exec_a.run(entry, &ExecConfig::default()).expect("runs");
        let trace_a = exec_a.code_page_trace().to_vec();

        let region_entry_b = entry + entry_b;
        let mut exec_b = Executor::new(&mut m, id, chk);
        exec_b
            .run(region_entry_b, &ExecConfig::default())
            .expect("runs");
        let trace_b = exec_b.code_page_trace().to_vec();

        assert_ne!(
            trace_a, trace_b,
            "page traces distinguish the two executions — the side              channel the paper leaves open"
        );
        assert_eq!(trace_a.len(), 1, "entry_a touches one code page");
        assert!(trace_b.len() >= 2, "entry_b's call crosses pages");
    }

    #[test]
    fn budget_exhaustion_reported() {
        // An infinite loop: jmp to self.
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.nop();
        asm.jmp_label(top);
        let text = asm.finish();
        let len = text.len() as u64;
        let image = ElfBuilder::new()
            .text(text)
            .function("spin", 0, len)
            .entry(0)
            .build();
        let (mut m, id, entry, chk) = provision(&image);
        let mut exec = Executor::new(&mut m, id, chk);
        let out = exec
            .run(
                entry,
                &ExecConfig {
                    max_instructions: 10_000,
                    ..ExecConfig::default()
                },
            )
            .expect("runs");
        assert_eq!(out.exit, ExitReason::BudgetExhausted);
        assert_eq!(out.instructions, 10_000);
    }
}
