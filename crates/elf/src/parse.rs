//! ELF64 reader with the validation EnGarde's loader performs (§4).
//!
//! The paper's loader "checks its header to verify that the executable is
//! correctly formatted", including "checking the signature as well as the
//! ELF class of the executable", requires position-independent,
//! statically-linked x86-64 executables, and then walks text sections,
//! symbol tables and the `.dynamic` section for relocation metadata.
//!
//! # Examples
//!
//! ```
//! use engarde_elf::build::ElfBuilder;
//! use engarde_elf::parse::ElfFile;
//!
//! # fn main() -> Result<(), engarde_elf::ElfError> {
//! let image = ElfBuilder::new()
//!     .text(vec![0xc3])            // ret
//!     .entry(0)
//!     .build();
//! let elf = ElfFile::parse(&image)?;
//! assert_eq!(elf.text_sections().count(), 1);
//! # Ok(())
//! # }
//! ```

use crate::types::*;
use crate::ElfError;

/// A parsed section together with its name and raw contents.
#[derive(Clone, Debug)]
pub struct Section {
    /// Section name (e.g. `.text`).
    pub name: String,
    /// The raw section header.
    pub header: SectionHeader,
    /// Section contents (empty for `SHT_NOBITS`).
    pub data: Vec<u8>,
}

impl Section {
    /// True for executable (`SHF_EXECINSTR`) allocated sections.
    pub fn is_text(&self) -> bool {
        self.header.sh_flags & SHF_EXECINSTR != 0 && self.header.sh_flags & SHF_ALLOC != 0
    }
}

/// A parsed symbol with its resolved name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedSymbol {
    /// Symbol name.
    pub name: String,
    /// The raw symbol entry.
    pub symbol: Symbol,
}

impl NamedSymbol {
    /// True for function symbols (`STT_FUNC`).
    pub fn is_function(&self) -> bool {
        self.symbol.sym_type() == STT_FUNC
    }
}

/// A fully parsed and validated ELF64 file.
#[derive(Clone, Debug)]
pub struct ElfFile {
    header: Elf64Header,
    program_headers: Vec<ProgramHeader>,
    sections: Vec<Section>,
    symbols: Vec<NamedSymbol>,
    dynamic: Vec<Dyn>,
}

impl ElfFile {
    /// Parses and validates an ELF64 image.
    ///
    /// Performs the checks EnGarde's loader performs before disassembly:
    /// magic, 64-bit class, little-endian encoding, x86-64 machine, and
    /// well-formed header tables.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`ElfError`] for any malformed or unsupported
    /// structure. Policy-level requirements (PIE, static linking, symbol
    /// presence) are separate checks: see [`ElfFile::require_pie`],
    /// [`ElfFile::require_static`] and [`ElfFile::symbols`].
    pub fn parse(data: &[u8]) -> Result<Self, ElfError> {
        if data.len() < EHDR_SIZE {
            return Err(ElfError::Truncated {
                what: "file header",
            });
        }
        if data[0..4] != ELF_MAGIC {
            return Err(ElfError::BadMagic);
        }
        if data[4] != ELFCLASS64 {
            return Err(ElfError::BadClass { class: data[4] });
        }
        if data[5] != ELFDATA2LSB {
            return Err(ElfError::BadEncoding { encoding: data[5] });
        }
        if data[6] != EV_CURRENT {
            return Err(ElfError::BadVersion { version: data[6] });
        }
        const FH: &str = "file header";
        let header = Elf64Header {
            e_type: read_u16(data, 16, FH)?,
            e_machine: read_u16(data, 18, FH)?,
            e_entry: read_u64(data, 24, FH)?,
            e_phoff: read_u64(data, 32, FH)?,
            e_shoff: read_u64(data, 40, FH)?,
            e_flags: read_u32(data, 48, FH)?,
            e_phnum: read_u16(data, 56, FH)?,
            e_shnum: read_u16(data, 60, FH)?,
            e_shstrndx: read_u16(data, 62, FH)?,
        };
        if header.e_machine != EM_X86_64 {
            return Err(ElfError::BadMachine {
                machine: header.e_machine,
            });
        }
        let phentsize = read_u16(data, 54, FH)? as usize;
        if header.e_phnum > 0 && phentsize != PHDR_SIZE {
            return Err(ElfError::BadTableEntry {
                what: "program header",
                size: phentsize,
            });
        }
        let shentsize = read_u16(data, 58, FH)? as usize;
        if header.e_shnum > 0 && shentsize != SHDR_SIZE {
            return Err(ElfError::BadTableEntry {
                what: "section header",
                size: shentsize,
            });
        }

        // Program headers.
        const PHT: &str = "program header table";
        let mut program_headers = Vec::with_capacity(header.e_phnum as usize);
        for i in 0..header.e_phnum as usize {
            let off = usize::try_from(header.e_phoff)
                .ok()
                .and_then(|base| base.checked_add(i * PHDR_SIZE))
                .ok_or(ElfError::Truncated { what: PHT })?;
            let p: [u8; PHDR_SIZE] = read_array(data, off, PHT)?;
            program_headers.push(ProgramHeader {
                p_type: read_u32(&p, 0, PHT)?,
                p_flags: read_u32(&p, 4, PHT)?,
                p_offset: read_u64(&p, 8, PHT)?,
                p_vaddr: read_u64(&p, 16, PHT)?,
                p_paddr: read_u64(&p, 24, PHT)?,
                p_filesz: read_u64(&p, 32, PHT)?,
                p_memsz: read_u64(&p, 40, PHT)?,
                p_align: read_u64(&p, 48, PHT)?,
            });
        }

        // Section headers.
        const SHT: &str = "section header table";
        let mut raw_sections = Vec::with_capacity(header.e_shnum as usize);
        for i in 0..header.e_shnum as usize {
            let off = usize::try_from(header.e_shoff)
                .ok()
                .and_then(|base| base.checked_add(i * SHDR_SIZE))
                .ok_or(ElfError::Truncated { what: SHT })?;
            let s: [u8; SHDR_SIZE] = read_array(data, off, SHT)?;
            raw_sections.push(SectionHeader {
                sh_name: read_u32(&s, 0, SHT)?,
                sh_type: read_u32(&s, 4, SHT)?,
                sh_flags: read_u64(&s, 8, SHT)?,
                sh_addr: read_u64(&s, 16, SHT)?,
                sh_offset: read_u64(&s, 24, SHT)?,
                sh_size: read_u64(&s, 32, SHT)?,
                sh_link: read_u32(&s, 40, SHT)?,
                sh_info: read_u32(&s, 44, SHT)?,
                sh_addralign: read_u64(&s, 48, SHT)?,
                sh_entsize: read_u64(&s, 56, SHT)?,
            });
        }

        // Section name string table.
        let shstrtab = if header.e_shnum > 0 {
            let idx = header.e_shstrndx as usize;
            if idx >= raw_sections.len() {
                return Err(ElfError::BadStringTable);
            }
            section_bytes(data, &raw_sections[idx])?
        } else {
            Vec::new()
        };

        let mut sections = Vec::with_capacity(raw_sections.len());
        for sh in &raw_sections {
            let name = str_at(&shstrtab, sh.sh_name as usize)?;
            let bytes = if sh.sh_type == SHT_NOBITS || sh.sh_type == SHT_NULL {
                Vec::new()
            } else {
                section_bytes(data, sh)?
            };
            sections.push(Section {
                name,
                header: *sh,
                data: bytes,
            });
        }

        // Symbol table (the paper's loader "reads the symbol tables to
        // keep track of the address and name of all the functions").
        let mut symbols = Vec::new();
        if let Some(symtab) = sections.iter().find(|s| s.header.sh_type == SHT_SYMTAB) {
            let strtab_idx = symtab.header.sh_link as usize;
            let strtab = sections
                .get(strtab_idx)
                .ok_or(ElfError::BadStringTable)?
                .data
                .clone();
            if symtab.data.len() % SYM_SIZE != 0 {
                return Err(ElfError::BadTableEntry {
                    what: "symbol",
                    size: symtab.data.len() % SYM_SIZE,
                });
            }
            const SYM: &str = "symbol table";
            for chunk in symtab.data.chunks(SYM_SIZE) {
                let sym = Symbol {
                    st_name: read_u32(chunk, 0, SYM)?,
                    st_info: read_u8(chunk, 4, SYM)?,
                    st_other: read_u8(chunk, 5, SYM)?,
                    st_shndx: read_u16(chunk, 6, SYM)?,
                    st_value: read_u64(chunk, 8, SYM)?,
                    st_size: read_u64(chunk, 16, SYM)?,
                };
                let name = str_at(&strtab, sym.st_name as usize)?;
                symbols.push(NamedSymbol { name, symbol: sym });
            }
        }

        // .dynamic entries.
        let mut dynamic = Vec::new();
        if let Some(dyn_sec) = sections.iter().find(|s| s.header.sh_type == SHT_DYNAMIC) {
            if dyn_sec.data.len() % DYN_SIZE != 0 {
                return Err(ElfError::BadTableEntry {
                    what: "dynamic",
                    size: dyn_sec.data.len() % DYN_SIZE,
                });
            }
            const DYN: &str = "dynamic section";
            for chunk in dyn_sec.data.chunks(DYN_SIZE) {
                let d = Dyn {
                    d_tag: read_i64(chunk, 0, DYN)?,
                    d_val: read_u64(chunk, 8, DYN)?,
                };
                if d.d_tag == DT_NULL {
                    break;
                }
                dynamic.push(d);
            }
        }

        Ok(ElfFile {
            header,
            program_headers,
            sections,
            symbols,
            dynamic,
        })
    }

    /// The parsed file header.
    pub fn header(&self) -> &Elf64Header {
        &self.header
    }

    /// All program headers.
    pub fn program_headers(&self) -> &[ProgramHeader] {
        &self.program_headers
    }

    /// Iterates over loadable (`PT_LOAD`) segments.
    pub fn load_segments(&self) -> impl Iterator<Item = &ProgramHeader> {
        self.program_headers.iter().filter(|ph| ph.is_load())
    }

    /// Iterates over loadable segments mapped both writable and
    /// executable — the W^X violations the `WxSegments` policy rejects.
    pub fn wx_segments(&self) -> impl Iterator<Item = &ProgramHeader> {
        self.load_segments().filter(|ph| ph.is_wx())
    }

    /// All sections (including the null section).
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Iterates over executable (`.text`-like) sections.
    pub fn text_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(|s| s.is_text())
    }

    /// All symbols (empty when the binary is stripped).
    pub fn symbols(&self) -> &[NamedSymbol] {
        &self.symbols
    }

    /// Iterates over function symbols.
    pub fn function_symbols(&self) -> impl Iterator<Item = &NamedSymbol> {
        self.symbols.iter().filter(|s| s.is_function())
    }

    /// All `.dynamic` entries (up to but excluding `DT_NULL`).
    pub fn dynamic(&self) -> &[Dyn] {
        &self.dynamic
    }

    /// Returns the value of a `.dynamic` entry by tag.
    pub fn dynamic_value(&self, tag: i64) -> Option<u64> {
        self.dynamic
            .iter()
            .find(|d| d.d_tag == tag)
            .map(|d| d.d_val)
    }

    /// Ensures the binary is a position-independent executable (`ET_DYN`),
    /// as EnGarde requires.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::NotPie`] otherwise.
    pub fn require_pie(&self) -> Result<(), ElfError> {
        if self.header.e_type == ET_DYN {
            Ok(())
        } else {
            Err(ElfError::NotPie {
                e_type: self.header.e_type,
            })
        }
    }

    /// Ensures the binary is statically linked (no `PT_INTERP` segment,
    /// no `DT_NEEDED` dependencies), as EnGarde requires.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::NotStatic`] otherwise.
    pub fn require_static(&self) -> Result<(), ElfError> {
        if self.program_headers.iter().any(|p| p.p_type == PT_INTERP)
            || self.dynamic.iter().any(|d| d.d_tag == DT_NEEDED)
        {
            Err(ElfError::NotStatic)
        } else {
            Ok(())
        }
    }

    /// Parses the RELA relocation table referenced from `.dynamic`
    /// (`DT_RELA`/`DT_RELASZ`/`DT_RELAENT`), the way the paper's loader
    /// "acquires all the information that it needs for relocations from
    /// the .dynamic section".
    ///
    /// Returns an empty vector when the binary has no relocations.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::BadRelocationTable`] if the `.dynamic` entries
    /// are inconsistent with the file contents.
    pub fn rela_entries(&self) -> Result<Vec<Rela>, ElfError> {
        let Some(rela_addr) = self.dynamic_value(DT_RELA) else {
            return Ok(Vec::new());
        };
        let size = self
            .dynamic_value(DT_RELASZ)
            .ok_or(ElfError::BadRelocationTable)?;
        let ent = self
            .dynamic_value(DT_RELAENT)
            .ok_or(ElfError::BadRelocationTable)?;
        if ent as usize != RELA_SIZE || size % ent != 0 {
            return Err(ElfError::BadRelocationTable);
        }
        let table_end = rela_addr
            .checked_add(size)
            .ok_or(ElfError::BadRelocationTable)?;
        // Find the section that contains the table by virtual address.
        let sec = self
            .sections
            .iter()
            .find(|s| {
                s.header.sh_addr <= rela_addr
                    && s.header
                        .sh_addr
                        .checked_add(s.header.sh_size)
                        .is_some_and(|sec_end| table_end <= sec_end)
                    && s.header.sh_type != SHT_NOBITS
            })
            .ok_or(ElfError::BadRelocationTable)?;
        // The table's declared extent must lie inside the section's
        // actual bytes — a hostile sh_size larger than the file contents
        // must fail closed here, not panic at the slice below.
        let start = usize::try_from(rela_addr - sec.header.sh_addr)
            .map_err(|_| ElfError::BadRelocationTable)?;
        let end = usize::try_from(size)
            .ok()
            .and_then(|s| start.checked_add(s))
            .filter(|&e| e <= sec.data.len())
            .ok_or(ElfError::BadRelocationTable)?;
        const RELA: &str = "relocation table";
        sec.data[start..end]
            .chunks(RELA_SIZE)
            .map(|c| {
                Ok(Rela {
                    r_offset: read_u64(c, 0, RELA)?,
                    r_info: read_u64(c, 8, RELA)?,
                    r_addend: read_i64(c, 16, RELA)?,
                })
            })
            .collect()
    }
}

fn section_bytes(data: &[u8], sh: &SectionHeader) -> Result<Vec<u8>, ElfError> {
    let off = usize::try_from(sh.sh_offset).map_err(|_| ElfError::Truncated { what: "section" })?;
    let end = usize::try_from(sh.sh_size)
        .ok()
        .and_then(|size| off.checked_add(size))
        .filter(|&e| e <= data.len())
        .ok_or(ElfError::Truncated { what: "section" })?;
    Ok(data[off..end].to_vec())
}

fn str_at(strtab: &[u8], offset: usize) -> Result<String, ElfError> {
    if offset > strtab.len() {
        return Err(ElfError::BadStringTable);
    }
    let rest = &strtab[offset..];
    let nul = rest
        .iter()
        .position(|&b| b == 0)
        .ok_or(ElfError::BadStringTable)?;
    String::from_utf8(rest[..nul].to_vec()).map_err(|_| ElfError::BadStringTable)
}

/// Fetches `N` bytes at `off`, failing closed on any out-of-range or
/// overflowing access. Every multi-byte read in this module goes through
/// here: a truncated or hostile image yields `ElfError::Truncated`, never
/// a slice-index panic inside the enclave.
fn read_array<const N: usize>(
    data: &[u8],
    off: usize,
    what: &'static str,
) -> Result<[u8; N], ElfError> {
    let end = off
        .checked_add(N)
        .filter(|&e| e <= data.len())
        .ok_or(ElfError::Truncated { what })?;
    data[off..end]
        .try_into()
        .map_err(|_| ElfError::Truncated { what })
}

fn read_u16(data: &[u8], off: usize, what: &'static str) -> Result<u16, ElfError> {
    Ok(u16::from_le_bytes(read_array(data, off, what)?))
}

fn read_u32(data: &[u8], off: usize, what: &'static str) -> Result<u32, ElfError> {
    Ok(u32::from_le_bytes(read_array(data, off, what)?))
}

fn read_u64(data: &[u8], off: usize, what: &'static str) -> Result<u64, ElfError> {
    Ok(u64::from_le_bytes(read_array(data, off, what)?))
}

fn read_i64(data: &[u8], off: usize, what: &'static str) -> Result<i64, ElfError> {
    Ok(i64::from_le_bytes(read_array(data, off, what)?))
}

fn read_u8(data: &[u8], off: usize, what: &'static str) -> Result<u8, ElfError> {
    data.get(off).copied().ok_or(ElfError::Truncated { what })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ElfBuilder;

    fn sample() -> Vec<u8> {
        ElfBuilder::new()
            .text(vec![0x90, 0x90, 0xc3]) // nop; nop; ret
            .data(vec![1, 2, 3, 4])
            .bss_size(32)
            .entry(0)
            .function("main", 0, 3)
            .relative_relocation(0x10, 0x20)
            .build()
    }

    #[test]
    fn parse_round_trip_basics() {
        let elf = ElfFile::parse(&sample()).expect("parse");
        assert_eq!(elf.header().e_type, ET_DYN);
        assert_eq!(elf.header().e_machine, EM_X86_64);
        elf.require_pie().expect("is PIE");
        elf.require_static().expect("is static");
        assert_eq!(elf.text_sections().count(), 1);
        assert_eq!(
            elf.section(".text").expect("has .text").data,
            vec![0x90, 0x90, 0xc3]
        );
        assert_eq!(
            elf.section(".data").expect("has .data").data,
            vec![1, 2, 3, 4]
        );
        let bss = elf.section(".bss").expect("has .bss");
        assert_eq!(bss.header.sh_size, 32);
        assert!(bss.data.is_empty());
    }

    #[test]
    fn symbols_resolved() {
        let elf = ElfFile::parse(&sample()).expect("parse");
        let main = elf
            .function_symbols()
            .find(|s| s.name == "main")
            .expect("main symbol");
        assert!(main.is_function());
        assert_eq!(main.symbol.st_size, 3);
    }

    #[test]
    fn relocations_resolved() {
        let elf = ElfFile::parse(&sample()).expect("parse");
        let relas = elf.rela_entries().expect("relas");
        assert_eq!(relas.len(), 1);
        assert_eq!(relas[0].rel_type(), R_X86_64_RELATIVE);
        assert_eq!(relas[0].r_addend, 0x20);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut img = sample();
        img[0] = 0x7e;
        assert!(matches!(ElfFile::parse(&img), Err(ElfError::BadMagic)));
    }

    #[test]
    fn rejects_32_bit_class() {
        let mut img = sample();
        img[4] = 1;
        assert!(matches!(
            ElfFile::parse(&img),
            Err(ElfError::BadClass { class: 1 })
        ));
    }

    #[test]
    fn rejects_big_endian() {
        let mut img = sample();
        img[5] = 2;
        assert!(matches!(
            ElfFile::parse(&img),
            Err(ElfError::BadEncoding { encoding: 2 })
        ));
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut img = sample();
        img[18..20].copy_from_slice(&EM_386.to_le_bytes());
        assert!(matches!(
            ElfFile::parse(&img),
            Err(ElfError::BadMachine { machine: EM_386 })
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let img = sample();
        assert!(ElfFile::parse(&img[..40]).is_err());
        assert!(ElfFile::parse(&[]).is_err());
    }

    #[test]
    fn hostile_truncation_at_every_length_returns_err_not_panic() {
        // The fail-closed contract: a prefix of a valid image is hostile
        // input the in-enclave parser must answer with Err — a panic
        // would crash the inspector and fail open. Exhaustive over every
        // truncation point of the sample.
        let img = sample();
        for len in 0..img.len() {
            assert!(
                ElfFile::parse(&img[..len]).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
        // The untruncated image still parses.
        assert!(ElfFile::parse(&img).is_ok());
    }

    #[test]
    fn hostile_rela_extent_is_rejected_not_panicking() {
        // Inflate DT_RELASZ so the declared table overruns its section:
        // previously this sliced past `sec.data` and panicked.
        let img = sample();
        let elf = ElfFile::parse(&img).expect("parses");
        let dyn_sec = elf.section(".dynamic").expect(".dynamic");
        let dyn_off = dyn_sec.header.sh_offset as usize;
        let mut evil = img.clone();
        for entry in 0..dyn_sec.data.len() / DYN_SIZE {
            let off = dyn_off + entry * DYN_SIZE;
            let tag = i64::from_le_bytes(evil[off..off + 8].try_into().expect("tag"));
            if tag == DT_RELASZ {
                // Huge but RELA_SIZE-aligned, so only the extent check
                // can stop it.
                let huge = (u64::MAX / RELA_SIZE as u64) * RELA_SIZE as u64;
                evil[off + 8..off + 16].copy_from_slice(&huge.to_le_bytes());
            }
        }
        let elf = ElfFile::parse(&evil).expect("header still parses");
        assert!(matches!(
            elf.rela_entries(),
            Err(ElfError::BadRelocationTable)
        ));
    }

    #[test]
    fn hostile_section_extents_are_rejected_not_panicking() {
        // Point a section header's file extent past the end of the
        // image; section_bytes must fail closed.
        let img = sample();
        let header_shoff = u64::from_le_bytes(img[40..48].try_into().expect("shoff")) as usize;
        let mut evil = img.clone();
        // Section header 1: sh_offset at +24, sh_size at +32.
        let sh1 = header_shoff + SHDR_SIZE;
        evil[sh1 + 24..sh1 + 32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ElfFile::parse(&evil).is_err());
        let mut evil = img;
        evil[sh1 + 32..sh1 + 40].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ElfFile::parse(&evil).is_err());
    }

    #[test]
    fn rejects_non_pie() {
        let mut img = sample();
        img[16..18].copy_from_slice(&ET_EXEC.to_le_bytes());
        let elf = ElfFile::parse(&img).expect("parses");
        assert!(matches!(
            elf.require_pie(),
            Err(ElfError::NotPie { e_type: ET_EXEC })
        ));
    }

    #[test]
    fn detects_dynamic_linking() {
        let img = ElfBuilder::new()
            .text(vec![0xc3])
            .entry(0)
            .needed_library(1) // fake DT_NEEDED
            .build();
        let elf = ElfFile::parse(&img).expect("parses");
        assert!(matches!(elf.require_static(), Err(ElfError::NotStatic)));
    }

    #[test]
    fn stripped_binary_has_no_symbols() {
        let img = ElfBuilder::new().text(vec![0xc3]).entry(0).strip().build();
        let elf = ElfFile::parse(&img).expect("parses");
        assert!(elf.symbols().is_empty());
    }
}
