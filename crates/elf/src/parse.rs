//! ELF64 reader with the validation EnGarde's loader performs (§4).
//!
//! The paper's loader "checks its header to verify that the executable is
//! correctly formatted", including "checking the signature as well as the
//! ELF class of the executable", requires position-independent,
//! statically-linked x86-64 executables, and then walks text sections,
//! symbol tables and the `.dynamic` section for relocation metadata.
//!
//! # Examples
//!
//! ```
//! use engarde_elf::build::ElfBuilder;
//! use engarde_elf::parse::ElfFile;
//!
//! # fn main() -> Result<(), engarde_elf::ElfError> {
//! let image = ElfBuilder::new()
//!     .text(vec![0xc3])            // ret
//!     .entry(0)
//!     .build();
//! let elf = ElfFile::parse(&image)?;
//! assert_eq!(elf.text_sections().count(), 1);
//! # Ok(())
//! # }
//! ```

use crate::types::*;
use crate::ElfError;

/// A parsed section together with its name and raw contents.
#[derive(Clone, Debug)]
pub struct Section {
    /// Section name (e.g. `.text`).
    pub name: String,
    /// The raw section header.
    pub header: SectionHeader,
    /// Section contents (empty for `SHT_NOBITS`).
    pub data: Vec<u8>,
}

impl Section {
    /// True for executable (`SHF_EXECINSTR`) allocated sections.
    pub fn is_text(&self) -> bool {
        self.header.sh_flags & SHF_EXECINSTR != 0 && self.header.sh_flags & SHF_ALLOC != 0
    }
}

/// A parsed symbol with its resolved name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedSymbol {
    /// Symbol name.
    pub name: String,
    /// The raw symbol entry.
    pub symbol: Symbol,
}

impl NamedSymbol {
    /// True for function symbols (`STT_FUNC`).
    pub fn is_function(&self) -> bool {
        self.symbol.sym_type() == STT_FUNC
    }
}

/// A fully parsed and validated ELF64 file.
#[derive(Clone, Debug)]
pub struct ElfFile {
    header: Elf64Header,
    program_headers: Vec<ProgramHeader>,
    sections: Vec<Section>,
    symbols: Vec<NamedSymbol>,
    dynamic: Vec<Dyn>,
}

impl ElfFile {
    /// Parses and validates an ELF64 image.
    ///
    /// Performs the checks EnGarde's loader performs before disassembly:
    /// magic, 64-bit class, little-endian encoding, x86-64 machine, and
    /// well-formed header tables.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`ElfError`] for any malformed or unsupported
    /// structure. Policy-level requirements (PIE, static linking, symbol
    /// presence) are separate checks: see [`ElfFile::require_pie`],
    /// [`ElfFile::require_static`] and [`ElfFile::symbols`].
    pub fn parse(data: &[u8]) -> Result<Self, ElfError> {
        if data.len() < EHDR_SIZE {
            return Err(ElfError::Truncated {
                what: "file header",
            });
        }
        if data[0..4] != ELF_MAGIC {
            return Err(ElfError::BadMagic);
        }
        if data[4] != ELFCLASS64 {
            return Err(ElfError::BadClass { class: data[4] });
        }
        if data[5] != ELFDATA2LSB {
            return Err(ElfError::BadEncoding { encoding: data[5] });
        }
        if data[6] != EV_CURRENT {
            return Err(ElfError::BadVersion { version: data[6] });
        }
        let header = Elf64Header {
            e_type: read_u16(data, 16),
            e_machine: read_u16(data, 18),
            e_entry: read_u64(data, 24),
            e_phoff: read_u64(data, 32),
            e_shoff: read_u64(data, 40),
            e_flags: read_u32(data, 48),
            e_phnum: read_u16(data, 56),
            e_shnum: read_u16(data, 60),
            e_shstrndx: read_u16(data, 62),
        };
        if header.e_machine != EM_X86_64 {
            return Err(ElfError::BadMachine {
                machine: header.e_machine,
            });
        }
        let phentsize = read_u16(data, 54) as usize;
        if header.e_phnum > 0 && phentsize != PHDR_SIZE {
            return Err(ElfError::BadTableEntry {
                what: "program header",
                size: phentsize,
            });
        }
        let shentsize = read_u16(data, 58) as usize;
        if header.e_shnum > 0 && shentsize != SHDR_SIZE {
            return Err(ElfError::BadTableEntry {
                what: "section header",
                size: shentsize,
            });
        }

        // Program headers.
        let mut program_headers = Vec::with_capacity(header.e_phnum as usize);
        for i in 0..header.e_phnum as usize {
            let off = header.e_phoff as usize + i * PHDR_SIZE;
            let end = off
                .checked_add(PHDR_SIZE)
                .filter(|&e| e <= data.len())
                .ok_or(ElfError::Truncated {
                    what: "program header table",
                })?;
            let p = &data[off..end];
            program_headers.push(ProgramHeader {
                p_type: read_u32(p, 0),
                p_flags: read_u32(p, 4),
                p_offset: read_u64(p, 8),
                p_vaddr: read_u64(p, 16),
                p_paddr: read_u64(p, 24),
                p_filesz: read_u64(p, 32),
                p_memsz: read_u64(p, 40),
                p_align: read_u64(p, 48),
            });
        }

        // Section headers.
        let mut raw_sections = Vec::with_capacity(header.e_shnum as usize);
        for i in 0..header.e_shnum as usize {
            let off = header.e_shoff as usize + i * SHDR_SIZE;
            let end = off
                .checked_add(SHDR_SIZE)
                .filter(|&e| e <= data.len())
                .ok_or(ElfError::Truncated {
                    what: "section header table",
                })?;
            let s = &data[off..end];
            raw_sections.push(SectionHeader {
                sh_name: read_u32(s, 0),
                sh_type: read_u32(s, 4),
                sh_flags: read_u64(s, 8),
                sh_addr: read_u64(s, 16),
                sh_offset: read_u64(s, 24),
                sh_size: read_u64(s, 32),
                sh_link: read_u32(s, 40),
                sh_info: read_u32(s, 44),
                sh_addralign: read_u64(s, 48),
                sh_entsize: read_u64(s, 56),
            });
        }

        // Section name string table.
        let shstrtab = if header.e_shnum > 0 {
            let idx = header.e_shstrndx as usize;
            if idx >= raw_sections.len() {
                return Err(ElfError::BadStringTable);
            }
            section_bytes(data, &raw_sections[idx])?
        } else {
            Vec::new()
        };

        let mut sections = Vec::with_capacity(raw_sections.len());
        for sh in &raw_sections {
            let name = str_at(&shstrtab, sh.sh_name as usize)?;
            let bytes = if sh.sh_type == SHT_NOBITS || sh.sh_type == SHT_NULL {
                Vec::new()
            } else {
                section_bytes(data, sh)?
            };
            sections.push(Section {
                name,
                header: *sh,
                data: bytes,
            });
        }

        // Symbol table (the paper's loader "reads the symbol tables to
        // keep track of the address and name of all the functions").
        let mut symbols = Vec::new();
        if let Some(symtab) = sections.iter().find(|s| s.header.sh_type == SHT_SYMTAB) {
            let strtab_idx = symtab.header.sh_link as usize;
            let strtab = sections
                .get(strtab_idx)
                .ok_or(ElfError::BadStringTable)?
                .data
                .clone();
            if symtab.data.len() % SYM_SIZE != 0 {
                return Err(ElfError::BadTableEntry {
                    what: "symbol",
                    size: symtab.data.len() % SYM_SIZE,
                });
            }
            for chunk in symtab.data.chunks(SYM_SIZE) {
                let sym = Symbol {
                    st_name: read_u32(chunk, 0),
                    st_info: chunk[4],
                    st_other: chunk[5],
                    st_shndx: read_u16(chunk, 6),
                    st_value: read_u64(chunk, 8),
                    st_size: read_u64(chunk, 16),
                };
                let name = str_at(&strtab, sym.st_name as usize)?;
                symbols.push(NamedSymbol { name, symbol: sym });
            }
        }

        // .dynamic entries.
        let mut dynamic = Vec::new();
        if let Some(dyn_sec) = sections.iter().find(|s| s.header.sh_type == SHT_DYNAMIC) {
            if dyn_sec.data.len() % DYN_SIZE != 0 {
                return Err(ElfError::BadTableEntry {
                    what: "dynamic",
                    size: dyn_sec.data.len() % DYN_SIZE,
                });
            }
            for chunk in dyn_sec.data.chunks(DYN_SIZE) {
                let d = Dyn {
                    d_tag: i64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes")),
                    d_val: read_u64(chunk, 8),
                };
                if d.d_tag == DT_NULL {
                    break;
                }
                dynamic.push(d);
            }
        }

        Ok(ElfFile {
            header,
            program_headers,
            sections,
            symbols,
            dynamic,
        })
    }

    /// The parsed file header.
    pub fn header(&self) -> &Elf64Header {
        &self.header
    }

    /// All program headers.
    pub fn program_headers(&self) -> &[ProgramHeader] {
        &self.program_headers
    }

    /// Iterates over loadable (`PT_LOAD`) segments.
    pub fn load_segments(&self) -> impl Iterator<Item = &ProgramHeader> {
        self.program_headers.iter().filter(|ph| ph.is_load())
    }

    /// Iterates over loadable segments mapped both writable and
    /// executable — the W^X violations the `WxSegments` policy rejects.
    pub fn wx_segments(&self) -> impl Iterator<Item = &ProgramHeader> {
        self.load_segments().filter(|ph| ph.is_wx())
    }

    /// All sections (including the null section).
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Iterates over executable (`.text`-like) sections.
    pub fn text_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(|s| s.is_text())
    }

    /// All symbols (empty when the binary is stripped).
    pub fn symbols(&self) -> &[NamedSymbol] {
        &self.symbols
    }

    /// Iterates over function symbols.
    pub fn function_symbols(&self) -> impl Iterator<Item = &NamedSymbol> {
        self.symbols.iter().filter(|s| s.is_function())
    }

    /// All `.dynamic` entries (up to but excluding `DT_NULL`).
    pub fn dynamic(&self) -> &[Dyn] {
        &self.dynamic
    }

    /// Returns the value of a `.dynamic` entry by tag.
    pub fn dynamic_value(&self, tag: i64) -> Option<u64> {
        self.dynamic
            .iter()
            .find(|d| d.d_tag == tag)
            .map(|d| d.d_val)
    }

    /// Ensures the binary is a position-independent executable (`ET_DYN`),
    /// as EnGarde requires.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::NotPie`] otherwise.
    pub fn require_pie(&self) -> Result<(), ElfError> {
        if self.header.e_type == ET_DYN {
            Ok(())
        } else {
            Err(ElfError::NotPie {
                e_type: self.header.e_type,
            })
        }
    }

    /// Ensures the binary is statically linked (no `PT_INTERP` segment,
    /// no `DT_NEEDED` dependencies), as EnGarde requires.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::NotStatic`] otherwise.
    pub fn require_static(&self) -> Result<(), ElfError> {
        if self.program_headers.iter().any(|p| p.p_type == PT_INTERP)
            || self.dynamic.iter().any(|d| d.d_tag == DT_NEEDED)
        {
            Err(ElfError::NotStatic)
        } else {
            Ok(())
        }
    }

    /// Parses the RELA relocation table referenced from `.dynamic`
    /// (`DT_RELA`/`DT_RELASZ`/`DT_RELAENT`), the way the paper's loader
    /// "acquires all the information that it needs for relocations from
    /// the .dynamic section".
    ///
    /// Returns an empty vector when the binary has no relocations.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::BadRelocationTable`] if the `.dynamic` entries
    /// are inconsistent with the file contents.
    pub fn rela_entries(&self) -> Result<Vec<Rela>, ElfError> {
        let Some(rela_addr) = self.dynamic_value(DT_RELA) else {
            return Ok(Vec::new());
        };
        let size = self
            .dynamic_value(DT_RELASZ)
            .ok_or(ElfError::BadRelocationTable)?;
        let ent = self
            .dynamic_value(DT_RELAENT)
            .ok_or(ElfError::BadRelocationTable)?;
        if ent as usize != RELA_SIZE || size % ent != 0 {
            return Err(ElfError::BadRelocationTable);
        }
        // Find the section that contains the table by virtual address.
        let sec = self
            .sections
            .iter()
            .find(|s| {
                s.header.sh_addr <= rela_addr
                    && rela_addr + size <= s.header.sh_addr + s.header.sh_size
                    && s.header.sh_type != SHT_NOBITS
            })
            .ok_or(ElfError::BadRelocationTable)?;
        let start = (rela_addr - sec.header.sh_addr) as usize;
        let bytes = &sec.data[start..start + size as usize];
        Ok(bytes
            .chunks(RELA_SIZE)
            .map(|c| Rela {
                r_offset: read_u64(c, 0),
                r_info: read_u64(c, 8),
                r_addend: i64::from_le_bytes(c[16..24].try_into().expect("8 bytes")),
            })
            .collect())
    }
}

fn section_bytes(data: &[u8], sh: &SectionHeader) -> Result<Vec<u8>, ElfError> {
    let off = sh.sh_offset as usize;
    let end = off
        .checked_add(sh.sh_size as usize)
        .filter(|&e| e <= data.len())
        .ok_or(ElfError::Truncated { what: "section" })?;
    Ok(data[off..end].to_vec())
}

fn str_at(strtab: &[u8], offset: usize) -> Result<String, ElfError> {
    if offset > strtab.len() {
        return Err(ElfError::BadStringTable);
    }
    let rest = &strtab[offset..];
    let nul = rest
        .iter()
        .position(|&b| b == 0)
        .ok_or(ElfError::BadStringTable)?;
    String::from_utf8(rest[..nul].to_vec()).map_err(|_| ElfError::BadStringTable)
}

fn read_u16(data: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(data[off..off + 2].try_into().expect("2 bytes"))
}

fn read_u32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"))
}

fn read_u64(data: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ElfBuilder;

    fn sample() -> Vec<u8> {
        ElfBuilder::new()
            .text(vec![0x90, 0x90, 0xc3]) // nop; nop; ret
            .data(vec![1, 2, 3, 4])
            .bss_size(32)
            .entry(0)
            .function("main", 0, 3)
            .relative_relocation(0x10, 0x20)
            .build()
    }

    #[test]
    fn parse_round_trip_basics() {
        let elf = ElfFile::parse(&sample()).expect("parse");
        assert_eq!(elf.header().e_type, ET_DYN);
        assert_eq!(elf.header().e_machine, EM_X86_64);
        elf.require_pie().expect("is PIE");
        elf.require_static().expect("is static");
        assert_eq!(elf.text_sections().count(), 1);
        assert_eq!(
            elf.section(".text").expect("has .text").data,
            vec![0x90, 0x90, 0xc3]
        );
        assert_eq!(
            elf.section(".data").expect("has .data").data,
            vec![1, 2, 3, 4]
        );
        let bss = elf.section(".bss").expect("has .bss");
        assert_eq!(bss.header.sh_size, 32);
        assert!(bss.data.is_empty());
    }

    #[test]
    fn symbols_resolved() {
        let elf = ElfFile::parse(&sample()).expect("parse");
        let main = elf
            .function_symbols()
            .find(|s| s.name == "main")
            .expect("main symbol");
        assert!(main.is_function());
        assert_eq!(main.symbol.st_size, 3);
    }

    #[test]
    fn relocations_resolved() {
        let elf = ElfFile::parse(&sample()).expect("parse");
        let relas = elf.rela_entries().expect("relas");
        assert_eq!(relas.len(), 1);
        assert_eq!(relas[0].rel_type(), R_X86_64_RELATIVE);
        assert_eq!(relas[0].r_addend, 0x20);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut img = sample();
        img[0] = 0x7e;
        assert!(matches!(ElfFile::parse(&img), Err(ElfError::BadMagic)));
    }

    #[test]
    fn rejects_32_bit_class() {
        let mut img = sample();
        img[4] = 1;
        assert!(matches!(
            ElfFile::parse(&img),
            Err(ElfError::BadClass { class: 1 })
        ));
    }

    #[test]
    fn rejects_big_endian() {
        let mut img = sample();
        img[5] = 2;
        assert!(matches!(
            ElfFile::parse(&img),
            Err(ElfError::BadEncoding { encoding: 2 })
        ));
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut img = sample();
        img[18..20].copy_from_slice(&EM_386.to_le_bytes());
        assert!(matches!(
            ElfFile::parse(&img),
            Err(ElfError::BadMachine { machine: EM_386 })
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let img = sample();
        assert!(ElfFile::parse(&img[..40]).is_err());
        assert!(ElfFile::parse(&[]).is_err());
    }

    #[test]
    fn rejects_non_pie() {
        let mut img = sample();
        img[16..18].copy_from_slice(&ET_EXEC.to_le_bytes());
        let elf = ElfFile::parse(&img).expect("parses");
        assert!(matches!(
            elf.require_pie(),
            Err(ElfError::NotPie { e_type: ET_EXEC })
        ));
    }

    #[test]
    fn detects_dynamic_linking() {
        let img = ElfBuilder::new()
            .text(vec![0xc3])
            .entry(0)
            .needed_library(1) // fake DT_NEEDED
            .build();
        let elf = ElfFile::parse(&img).expect("parses");
        assert!(matches!(elf.require_static(), Err(ElfError::NotStatic)));
    }

    #[test]
    fn stripped_binary_has_no_symbols() {
        let img = ElfBuilder::new().text(vec![0xc3]).entry(0).strip().build();
        let elf = ElfFile::parse(&img).expect("parses");
        assert!(elf.symbols().is_empty());
    }
}
