//! Programmatic ELF64 writer.
//!
//! The EnGarde paper evaluates on real binaries compiled with clang/LLVM;
//! this reproduction generates equivalent binaries synthetically (see
//! `engarde-workloads`). [`ElfBuilder`] produces genuine ELF64 PIE images
//! — file header, program headers, sections, symbol table, `.dynamic`
//! and RELA relocations — that [`crate::parse::ElfFile`] and EnGarde's
//! loader consume exactly as they would a compiler-produced binary.
//!
//! # Examples
//!
//! ```
//! use engarde_elf::build::ElfBuilder;
//! use engarde_elf::parse::ElfFile;
//!
//! # fn main() -> Result<(), engarde_elf::ElfError> {
//! let image = ElfBuilder::new()
//!     .text(vec![0x90, 0xc3])          // nop; ret
//!     .data(b"hello".to_vec())
//!     .function("entry", 0, 2)
//!     .entry(0)
//!     .build();
//! let parsed = ElfFile::parse(&image)?;
//! assert_eq!(parsed.function_symbols().count(), 1);
//! # Ok(())
//! # }
//! ```

use crate::types::*;

const PAGE: u64 = 0x1000;

/// The default virtual address of `.text` in generated images.
pub const TEXT_VADDR: u64 = 0x1000;

fn align_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

#[derive(Clone, Debug)]
struct PendingSymbol {
    name: String,
    text_offset: u64,
    size: u64,
    typ: u8,
}

/// Builder for ELF64 position-independent executables.
///
/// Non-consuming: configuration methods take `&mut self` and return
/// `&mut Self`, and [`ElfBuilder::build`] takes `&self`, so one-liner and
/// incremental configuration both work.
#[derive(Clone, Debug, Default)]
pub struct ElfBuilder {
    text: Vec<u8>,
    data: Vec<u8>,
    bss_size: u64,
    entry_offset: u64,
    symbols: Vec<PendingSymbol>,
    relocations: Vec<(u64, i64)>,
    needed: Vec<u64>,
    strip: bool,
    e_type: Option<u16>,
    e_machine: Option<u16>,
    wx_text: bool,
}

impl ElfBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `.text` section contents.
    pub fn text(&mut self, bytes: Vec<u8>) -> &mut Self {
        self.text = bytes;
        self
    }

    /// Sets the `.data` section contents.
    pub fn data(&mut self, bytes: Vec<u8>) -> &mut Self {
        self.data = bytes;
        self
    }

    /// Sets the `.bss` size in bytes.
    pub fn bss_size(&mut self, size: u64) -> &mut Self {
        self.bss_size = size;
        self
    }

    /// Sets the entry point as an offset into `.text`.
    pub fn entry(&mut self, text_offset: u64) -> &mut Self {
        self.entry_offset = text_offset;
        self
    }

    /// Adds a function symbol at `text_offset` with the given size.
    pub fn function(&mut self, name: &str, text_offset: u64, size: u64) -> &mut Self {
        self.symbols.push(PendingSymbol {
            name: name.to_string(),
            text_offset,
            size,
            typ: STT_FUNC,
        });
        self
    }

    /// Adds an untyped (non-function) symbol at `text_offset`.
    pub fn notype_symbol(&mut self, name: &str, text_offset: u64, size: u64) -> &mut Self {
        self.symbols.push(PendingSymbol {
            name: name.to_string(),
            text_offset,
            size,
            typ: STT_NOTYPE,
        });
        self
    }

    /// Adds an `R_X86_64_RELATIVE` relocation patching eight bytes at
    /// `data_offset` (an offset into the data segment, which may fall in
    /// `.bss`) to `base + addend`.
    pub fn relative_relocation(&mut self, data_offset: u64, addend: i64) -> &mut Self {
        self.relocations.push((data_offset, addend));
        self
    }

    /// Adds a `DT_NEEDED` entry, marking the binary dynamically linked
    /// (used in tests: EnGarde rejects such binaries).
    pub fn needed_library(&mut self, strtab_offset: u64) -> &mut Self {
        self.needed.push(strtab_offset);
        self
    }

    /// Omits the symbol table (EnGarde auto-rejects stripped binaries
    /// when a policy needs symbols).
    pub fn strip(&mut self) -> &mut Self {
        self.strip = true;
        self
    }

    /// Marks the text segment writable as well as executable (W|X), for
    /// building binaries the `WxSegments` policy must reject.
    pub fn wx_text(&mut self) -> &mut Self {
        self.wx_text = true;
        self
    }

    /// Overrides `e_type` (default `ET_DYN`), for building invalid inputs.
    pub fn object_type(&mut self, e_type: u16) -> &mut Self {
        self.e_type = Some(e_type);
        self
    }

    /// Overrides `e_machine` (default `EM_X86_64`), for building invalid
    /// inputs.
    pub fn machine(&mut self, e_machine: u16) -> &mut Self {
        self.e_machine = Some(e_machine);
        self
    }

    /// The virtual address `.text` will be given (fixed in this layout).
    pub fn text_vaddr(&self) -> u64 {
        TEXT_VADDR
    }

    /// The virtual address the data segment will be given.
    pub fn data_vaddr(&self) -> u64 {
        align_up(TEXT_VADDR + self.text.len() as u64, PAGE)
    }

    /// Serialises the configured image.
    pub fn build(&self) -> Vec<u8> {
        // ----- layout ------------------------------------------------
        let text_off = TEXT_VADDR; // offset == vaddr for alloc content
        let text_size = self.text.len() as u64;

        let rw_off = align_up(text_off + text_size, PAGE);
        let rela_bytes: Vec<u8> = {
            let data_vaddr_for_reloc = self.data_vaddr_internal(rw_off);
            self.relocations
                .iter()
                .flat_map(|&(off, addend)| {
                    Rela {
                        r_offset: data_vaddr_for_reloc + off,
                        r_info: Rela::info(0, R_X86_64_RELATIVE),
                        r_addend: addend,
                    }
                    .to_bytes()
                })
                .collect()
        };
        let has_dynamic = !self.relocations.is_empty() || !self.needed.is_empty();
        let rela_off = rw_off;
        let rela_size = rela_bytes.len() as u64;

        let dyn_entries: Vec<Dyn> = if has_dynamic {
            let mut v = Vec::new();
            for &n in &self.needed {
                v.push(Dyn {
                    d_tag: DT_NEEDED,
                    d_val: n,
                });
            }
            if !self.relocations.is_empty() {
                v.push(Dyn {
                    d_tag: DT_RELA,
                    d_val: rela_off,
                });
                v.push(Dyn {
                    d_tag: DT_RELASZ,
                    d_val: rela_size,
                });
                v.push(Dyn {
                    d_tag: DT_RELAENT,
                    d_val: RELA_SIZE as u64,
                });
            }
            v.push(Dyn {
                d_tag: DT_NULL,
                d_val: 0,
            });
            v
        } else {
            Vec::new()
        };
        let dyn_off = rela_off + rela_size;
        let dyn_size = (dyn_entries.len() * DYN_SIZE) as u64;
        let data_off = dyn_off + dyn_size;
        let data_size = self.data.len() as u64;
        let bss_vaddr = data_off + data_size;

        // Non-alloc tables follow the file image of the RW segment.
        let symtab_off = bss_vaddr; // file offset only
        let (symtab_bytes, strtab_bytes) = self.build_symtab();
        let strtab_off = symtab_off + symtab_bytes.len() as u64;

        // Section name string table.
        let mut shstrtab: Vec<u8> = vec![0];
        let mut name_off = |name: &str| -> u32 {
            let off = shstrtab.len() as u32;
            shstrtab.extend_from_slice(name.as_bytes());
            shstrtab.push(0);
            off
        };

        // ----- sections ----------------------------------------------
        let mut sections: Vec<SectionHeader> = vec![SectionHeader::default()]; // NULL
        let text_name = name_off(".text");
        sections.push(SectionHeader {
            sh_name: text_name,
            sh_type: SHT_PROGBITS,
            sh_flags: SHF_ALLOC | SHF_EXECINSTR,
            sh_addr: text_off,
            sh_offset: text_off,
            sh_size: text_size,
            sh_addralign: 16,
            ..Default::default()
        });
        let mut symtab_link_strtab = 0u32;
        let mut dynamic_index = None;
        if has_dynamic {
            if !self.relocations.is_empty() {
                let n = name_off(".rela.dyn");
                sections.push(SectionHeader {
                    sh_name: n,
                    sh_type: SHT_RELA,
                    sh_flags: SHF_ALLOC,
                    sh_addr: rela_off,
                    sh_offset: rela_off,
                    sh_size: rela_size,
                    sh_entsize: RELA_SIZE as u64,
                    sh_addralign: 8,
                    ..Default::default()
                });
            }
            let n = name_off(".dynamic");
            dynamic_index = Some(sections.len());
            sections.push(SectionHeader {
                sh_name: n,
                sh_type: SHT_DYNAMIC,
                sh_flags: SHF_ALLOC | SHF_WRITE,
                sh_addr: dyn_off,
                sh_offset: dyn_off,
                sh_size: dyn_size,
                sh_entsize: DYN_SIZE as u64,
                sh_addralign: 8,
                ..Default::default()
            });
        }
        let n = name_off(".data");
        sections.push(SectionHeader {
            sh_name: n,
            sh_type: SHT_PROGBITS,
            sh_flags: SHF_ALLOC | SHF_WRITE,
            sh_addr: data_off,
            sh_offset: data_off,
            sh_size: data_size,
            sh_addralign: 8,
            ..Default::default()
        });
        let n = name_off(".bss");
        sections.push(SectionHeader {
            sh_name: n,
            sh_type: SHT_NOBITS,
            sh_flags: SHF_ALLOC | SHF_WRITE,
            sh_addr: bss_vaddr,
            sh_offset: bss_vaddr,
            sh_size: self.bss_size,
            sh_addralign: 8,
            ..Default::default()
        });
        if !self.strip {
            let n = name_off(".symtab");
            let symtab_index = sections.len();
            sections.push(SectionHeader {
                sh_name: n,
                sh_type: SHT_SYMTAB,
                sh_flags: 0,
                sh_addr: 0,
                sh_offset: symtab_off,
                sh_size: symtab_bytes.len() as u64,
                sh_link: symtab_index as u32 + 1, // .strtab follows
                sh_info: 1,                       // one local (null) symbol
                sh_entsize: SYM_SIZE as u64,
                sh_addralign: 8,
            });
            symtab_link_strtab = symtab_index as u32 + 1;
            let n = name_off(".strtab");
            sections.push(SectionHeader {
                sh_name: n,
                sh_type: SHT_STRTAB,
                sh_offset: strtab_off,
                sh_size: strtab_bytes.len() as u64,
                sh_addralign: 1,
                ..Default::default()
            });
        }
        let shstr_name = name_off(".shstrtab");
        let shstrtab_off = strtab_off + strtab_bytes.len() as u64;
        let shstrtab_index = sections.len();
        sections.push(SectionHeader {
            sh_name: shstr_name,
            sh_type: SHT_STRTAB,
            sh_offset: shstrtab_off,
            sh_size: shstrtab.len() as u64,
            sh_addralign: 1,
            ..Default::default()
        });
        let _ = symtab_link_strtab;

        let shoff = align_up(shstrtab_off + shstrtab.len() as u64, 8);

        // ----- program headers ----------------------------------------
        let mut phdrs: Vec<ProgramHeader> = Vec::new();
        let phoff = EHDR_SIZE as u64;
        // Headers segment (R).
        phdrs.push(ProgramHeader {
            p_type: PT_LOAD,
            p_flags: PF_R,
            p_offset: 0,
            p_vaddr: 0,
            p_paddr: 0,
            p_filesz: 0, // fixed up below once we know the count
            p_memsz: 0,
            p_align: PAGE,
        });
        // Text segment (RX; RWX only when a test explicitly asks for a
        // W^X violation via `wx_text`).
        phdrs.push(ProgramHeader {
            p_type: PT_LOAD,
            p_flags: if self.wx_text {
                PF_R | PF_W | PF_X
            } else {
                PF_R | PF_X
            },
            p_offset: text_off,
            p_vaddr: text_off,
            p_paddr: text_off,
            p_filesz: text_size,
            p_memsz: text_size,
            p_align: PAGE,
        });
        // RW segment (.rela.dyn + .dynamic + .data + .bss).
        let rw_filesz = (dyn_off + dyn_size + data_size) - rw_off;
        phdrs.push(ProgramHeader {
            p_type: PT_LOAD,
            p_flags: PF_R | PF_W,
            p_offset: rw_off,
            p_vaddr: rw_off,
            p_paddr: rw_off,
            p_filesz: rw_filesz,
            p_memsz: rw_filesz + self.bss_size,
            p_align: PAGE,
        });
        if dynamic_index.is_some() {
            phdrs.push(ProgramHeader {
                p_type: PT_DYNAMIC,
                p_flags: PF_R | PF_W,
                p_offset: dyn_off,
                p_vaddr: dyn_off,
                p_paddr: dyn_off,
                p_filesz: dyn_size,
                p_memsz: dyn_size,
                p_align: 8,
            });
        }
        let headers_size = EHDR_SIZE as u64 + (phdrs.len() * PHDR_SIZE) as u64;
        phdrs[0].p_filesz = headers_size;
        phdrs[0].p_memsz = headers_size;

        // ----- emit ----------------------------------------------------
        let header = Elf64Header {
            e_type: self.e_type.unwrap_or(ET_DYN),
            e_machine: self.e_machine.unwrap_or(EM_X86_64),
            e_entry: TEXT_VADDR + self.entry_offset,
            e_phoff: phoff,
            e_shoff: shoff,
            e_flags: 0,
            e_phnum: phdrs.len() as u16,
            e_shnum: sections.len() as u16,
            e_shstrndx: shstrtab_index as u16,
        };

        let total = shoff as usize + sections.len() * SHDR_SIZE;
        let mut out = vec![0u8; total];
        out[..EHDR_SIZE].copy_from_slice(&header.to_bytes());
        for (i, p) in phdrs.iter().enumerate() {
            let off = phoff as usize + i * PHDR_SIZE;
            out[off..off + PHDR_SIZE].copy_from_slice(&p.to_bytes());
        }
        out[text_off as usize..(text_off + text_size) as usize].copy_from_slice(&self.text);
        out[rela_off as usize..(rela_off + rela_size) as usize].copy_from_slice(&rela_bytes);
        for (i, d) in dyn_entries.iter().enumerate() {
            let off = dyn_off as usize + i * DYN_SIZE;
            out[off..off + DYN_SIZE].copy_from_slice(&d.to_bytes());
        }
        out[data_off as usize..(data_off + data_size) as usize].copy_from_slice(&self.data);
        out[symtab_off as usize..symtab_off as usize + symtab_bytes.len()]
            .copy_from_slice(&symtab_bytes);
        out[strtab_off as usize..strtab_off as usize + strtab_bytes.len()]
            .copy_from_slice(&strtab_bytes);
        out[shstrtab_off as usize..shstrtab_off as usize + shstrtab.len()]
            .copy_from_slice(&shstrtab);
        for (i, s) in sections.iter().enumerate() {
            let off = shoff as usize + i * SHDR_SIZE;
            out[off..off + SHDR_SIZE].copy_from_slice(&s.to_bytes());
        }
        out
    }

    fn data_vaddr_internal(&self, rw_off: u64) -> u64 {
        // Mirrors the layout computed in build(): relocations target
        // offsets within the data+bss region, which begins after
        // .rela.dyn and .dynamic.
        let rela_size = (self.relocations.len() * RELA_SIZE) as u64;
        let has_dynamic = !self.relocations.is_empty() || !self.needed.is_empty();
        let dyn_count = if has_dynamic {
            let mut c = self.needed.len() + 1; // + DT_NULL
            if !self.relocations.is_empty() {
                c += 3;
            }
            c
        } else {
            0
        };
        rw_off + rela_size + (dyn_count * DYN_SIZE) as u64
    }

    fn build_symtab(&self) -> (Vec<u8>, Vec<u8>) {
        if self.strip {
            return (Vec::new(), Vec::new());
        }
        let mut strtab: Vec<u8> = vec![0];
        let mut symtab: Vec<u8> = Symbol::default().to_bytes().to_vec(); // null symbol
        for s in &self.symbols {
            let name_off = strtab.len() as u32;
            strtab.extend_from_slice(s.name.as_bytes());
            strtab.push(0);
            let sym = Symbol {
                st_name: name_off,
                st_info: Symbol::info(STB_GLOBAL, s.typ),
                st_other: 0,
                st_shndx: 1, // .text
                st_value: TEXT_VADDR + s.text_offset,
                st_size: s.size,
            };
            symtab.extend_from_slice(&sym.to_bytes());
        }
        (symtab, strtab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::ElfFile;

    #[test]
    fn empty_text_builds_and_parses() {
        let img = ElfBuilder::new().build();
        let elf = ElfFile::parse(&img).expect("parse");
        assert_eq!(elf.section(".text").expect(".text").data.len(), 0);
    }

    #[test]
    fn entry_point_offset_applied() {
        let img = ElfBuilder::new().text(vec![0x90; 64]).entry(32).build();
        let elf = ElfFile::parse(&img).expect("parse");
        assert_eq!(elf.header().e_entry, TEXT_VADDR + 32);
    }

    #[test]
    fn load_segments_have_distinct_permissions() {
        let img = ElfBuilder::new()
            .text(vec![0xc3])
            .data(vec![0u8; 8])
            .build();
        let elf = ElfFile::parse(&img).expect("parse");
        let loads: Vec<_> = elf
            .program_headers()
            .iter()
            .filter(|p| p.p_type == PT_LOAD)
            .collect();
        assert_eq!(loads.len(), 3);
        assert!(loads.iter().any(|p| p.p_flags == PF_R));
        assert!(loads.iter().any(|p| p.p_flags == (PF_R | PF_X)));
        assert!(loads.iter().any(|p| p.p_flags == (PF_R | PF_W)));
        // No segment is both writable and executable.
        assert!(loads
            .iter()
            .all(|p| p.p_flags & (PF_W | PF_X) != (PF_W | PF_X)));
    }

    #[test]
    fn wx_text_builds_a_wx_segment() {
        let img = ElfBuilder::new()
            .text(vec![0xc3])
            .data(vec![0u8; 8])
            .wx_text()
            .build();
        let elf = ElfFile::parse(&img).expect("parse");
        let wx: Vec<_> = elf.wx_segments().collect();
        assert_eq!(wx.len(), 1);
        assert_eq!(wx[0].p_flags, PF_R | PF_W | PF_X);
        assert!(wx[0].is_wx() && wx[0].is_load());
        // The default build has none.
        let clean = ElfFile::parse(&ElfBuilder::new().text(vec![0xc3]).build()).expect("parse");
        assert_eq!(clean.wx_segments().count(), 0);
    }

    #[test]
    fn text_larger_than_a_page() {
        let text: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let img = ElfBuilder::new().text(text.clone()).build();
        let elf = ElfFile::parse(&img).expect("parse");
        assert_eq!(elf.section(".text").expect(".text").data, text);
        // The RW segment begins on the next page boundary.
        let rw = elf
            .program_headers()
            .iter()
            .find(|p| p.p_type == PT_LOAD && p.p_flags == (PF_R | PF_W))
            .expect("rw segment");
        assert_eq!(rw.p_vaddr % 0x1000, 0);
        assert!(rw.p_vaddr >= TEXT_VADDR + 10_000);
    }

    #[test]
    fn multiple_symbols_in_order() {
        let img = ElfBuilder::new()
            .text(vec![0x90; 100])
            .function("f1", 0, 10)
            .function("f2", 10, 20)
            .notype_symbol("marker", 30, 0)
            .build();
        let elf = ElfFile::parse(&img).expect("parse");
        // Null symbol + 3.
        assert_eq!(elf.symbols().len(), 4);
        assert_eq!(elf.function_symbols().count(), 2);
        let f2 = elf.symbols().iter().find(|s| s.name == "f2").expect("f2");
        assert_eq!(f2.symbol.st_value, TEXT_VADDR + 10);
    }

    #[test]
    fn relocation_entries_round_trip() {
        let mut b = ElfBuilder::new();
        b.text(vec![0xc3]).data(vec![0u8; 64]);
        for i in 0..8 {
            b.relative_relocation(i * 8, (i * 0x100) as i64);
        }
        let elf = ElfFile::parse(&b.build()).expect("parse");
        let relas = elf.rela_entries().expect("relas");
        assert_eq!(relas.len(), 8);
        for (i, r) in relas.iter().enumerate() {
            assert_eq!(r.r_addend, (i as i64) * 0x100);
            assert_eq!(r.rel_type(), R_X86_64_RELATIVE);
        }
        // Offsets are inside the RW segment.
        let rw = elf
            .program_headers()
            .iter()
            .find(|p| p.p_type == PT_LOAD && p.p_flags == (PF_R | PF_W))
            .expect("rw");
        for r in &relas {
            assert!(r.r_offset >= rw.p_vaddr);
            assert!(r.r_offset < rw.p_vaddr + rw.p_memsz);
        }
    }

    #[test]
    fn dynamic_segment_emitted_with_relocations() {
        let img = ElfBuilder::new()
            .text(vec![0xc3])
            .relative_relocation(0, 0)
            .build();
        let elf = ElfFile::parse(&img).expect("parse");
        assert!(elf.dynamic_value(DT_RELA).is_some());
        assert_eq!(elf.dynamic_value(DT_RELAENT), Some(RELA_SIZE as u64));
        assert!(elf.program_headers().iter().any(|p| p.p_type == PT_DYNAMIC));
    }

    #[test]
    fn no_dynamic_section_without_content() {
        let img = ElfBuilder::new().text(vec![0xc3]).build();
        let elf = ElfFile::parse(&img).expect("parse");
        assert!(elf.dynamic().is_empty());
        assert!(elf.section(".dynamic").is_none());
    }

    #[test]
    fn builder_is_reusable_and_chainable() {
        let mut b = ElfBuilder::new();
        b.text(vec![0x90]).data(vec![1]);
        let img1 = b.build();
        b.data(vec![2]);
        let img2 = b.build();
        assert_ne!(img1, img2);
        let elf2 = ElfFile::parse(&img2).expect("parse");
        assert_eq!(elf2.section(".data").expect(".data").data, vec![2]);
    }
}
