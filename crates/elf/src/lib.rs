//! # engarde-elf
//!
//! ELF64 reader and writer substrate for the EnGarde stack.
//!
//! EnGarde's prototype (paper §4) "supports x86-64 executables that use
//! ELF format, are compiled as position independent executables and are
//! statically linked". This crate provides:
//!
//! - [`types`] — the on-disk ELF64 structures and constants,
//! - [`parse`] — a validating reader ([`parse::ElfFile`]) implementing the
//!   loader's header checks, text-section extraction, symbol tables and
//!   `.dynamic`-driven relocation discovery,
//! - [`build`] — a writer ([`build::ElfBuilder`]) used by
//!   `engarde-workloads` to generate compiler-equivalent benchmark
//!   binaries.
//!
//! # Examples
//!
//! ```
//! use engarde_elf::build::ElfBuilder;
//! use engarde_elf::parse::ElfFile;
//!
//! # fn main() -> Result<(), engarde_elf::ElfError> {
//! let image = ElfBuilder::new().text(vec![0xc3]).build();
//! let elf = ElfFile::parse(&image)?;
//! elf.require_pie()?;
//! elf.require_static()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod parse;
pub mod types;

use std::error::Error;
use std::fmt;

/// Errors produced while parsing or validating an ELF image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ElfError {
    /// The file is shorter than a required structure.
    Truncated {
        /// Which structure was truncated.
        what: &'static str,
    },
    /// The file does not begin with `\x7fELF`.
    BadMagic,
    /// Not a 64-bit ELF file.
    BadClass {
        /// The `EI_CLASS` byte found.
        class: u8,
    },
    /// Not little-endian.
    BadEncoding {
        /// The `EI_DATA` byte found.
        encoding: u8,
    },
    /// Unsupported ELF version.
    BadVersion {
        /// The `EI_VERSION` byte found.
        version: u8,
    },
    /// Not an x86-64 binary.
    BadMachine {
        /// The `e_machine` value found.
        machine: u16,
    },
    /// A table entry size does not match the ELF64 ABI.
    BadTableEntry {
        /// Which table.
        what: &'static str,
        /// The offending size.
        size: usize,
    },
    /// A string table reference is out of range or not NUL-terminated.
    BadStringTable,
    /// The `.dynamic` relocation description is inconsistent.
    BadRelocationTable,
    /// The binary is not a position-independent executable.
    NotPie {
        /// The `e_type` value found.
        e_type: u16,
    },
    /// The binary is dynamically linked.
    NotStatic,
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what } => write!(f, "truncated ELF image ({what})"),
            ElfError::BadMagic => write!(f, "missing ELF magic"),
            ElfError::BadClass { class } => {
                write!(f, "unsupported ELF class {class} (need ELFCLASS64)")
            }
            ElfError::BadEncoding { encoding } => {
                write!(
                    f,
                    "unsupported data encoding {encoding} (need little-endian)"
                )
            }
            ElfError::BadVersion { version } => write!(f, "unsupported ELF version {version}"),
            ElfError::BadMachine { machine } => {
                write!(f, "unsupported machine {machine} (need x86-64)")
            }
            ElfError::BadTableEntry { what, size } => {
                write!(f, "malformed {what} table entry of size {size}")
            }
            ElfError::BadStringTable => write!(f, "malformed string table reference"),
            ElfError::BadRelocationTable => write!(f, "inconsistent relocation table description"),
            ElfError::NotPie { e_type } => {
                write!(
                    f,
                    "not a position-independent executable (e_type = {e_type})"
                )
            }
            ElfError::NotStatic => write!(f, "binary is dynamically linked"),
        }
    }
}

impl Error for ElfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_displayable_and_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ElfError>();
        assert!(!ElfError::BadMagic.to_string().is_empty());
        assert!(ElfError::NotPie { e_type: 2 }.to_string().contains('2'));
    }
}
