//! ELF64 on-disk structures and constants (System V ABI, x86-64 psABI).
//!
//! Only the subset needed by EnGarde's loader and the workload generator
//! is modelled: file header, program headers, section headers, symbols,
//! RELA relocations and `.dynamic` entries — all little-endian ELF64.

/// ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];
/// 64-bit ELF class.
pub const ELFCLASS64: u8 = 2;
/// Little-endian data encoding.
pub const ELFDATA2LSB: u8 = 1;
/// Current ELF version.
pub const EV_CURRENT: u8 = 1;
/// System V OS ABI.
pub const ELFOSABI_SYSV: u8 = 0;

/// Shared-object file type (PIE executables are `ET_DYN`).
pub const ET_DYN: u16 = 3;
/// Fixed-address executable (rejected by the loader: not PIE).
pub const ET_EXEC: u16 = 2;
/// Relocatable object file.
pub const ET_REL: u16 = 1;

/// AMD x86-64 machine.
pub const EM_X86_64: u16 = 62;
/// Intel 80386 machine (rejected: EnGarde supports x86-64 only).
pub const EM_386: u16 = 3;

/// Size of the ELF64 file header.
pub const EHDR_SIZE: usize = 64;
/// Size of one ELF64 program header.
pub const PHDR_SIZE: usize = 56;
/// Size of one ELF64 section header.
pub const SHDR_SIZE: usize = 64;
/// Size of one ELF64 symbol-table entry.
pub const SYM_SIZE: usize = 24;
/// Size of one ELF64 RELA relocation entry.
pub const RELA_SIZE: usize = 24;
/// Size of one `.dynamic` entry.
pub const DYN_SIZE: usize = 16;

// Program header types.
/// Loadable segment.
pub const PT_LOAD: u32 = 1;
/// Dynamic-linking information segment.
pub const PT_DYNAMIC: u32 = 2;
/// Interpreter path segment (its presence means dynamic linking —
/// EnGarde requires statically-linked PIEs and rejects it).
pub const PT_INTERP: u32 = 3;

// Program header flags.
/// Executable segment.
pub const PF_X: u32 = 1;
/// Writable segment.
pub const PF_W: u32 = 2;
/// Readable segment.
pub const PF_R: u32 = 4;

// Section header types.
/// Inactive section header.
pub const SHT_NULL: u32 = 0;
/// Program-defined contents (e.g. `.text`, `.data`).
pub const SHT_PROGBITS: u32 = 1;
/// Symbol table.
pub const SHT_SYMTAB: u32 = 2;
/// String table.
pub const SHT_STRTAB: u32 = 3;
/// RELA relocation table.
pub const SHT_RELA: u32 = 4;
/// Dynamic-linking information.
pub const SHT_DYNAMIC: u32 = 6;
/// Zero-initialised section occupying no file space (`.bss`).
pub const SHT_NOBITS: u32 = 8;

// Section flags.
/// Section is writable at runtime.
pub const SHF_WRITE: u64 = 0x1;
/// Section occupies memory at runtime.
pub const SHF_ALLOC: u64 = 0x2;
/// Section contains executable instructions.
pub const SHF_EXECINSTR: u64 = 0x4;

// Symbol binding / type.
/// Local symbol binding.
pub const STB_LOCAL: u8 = 0;
/// Global symbol binding.
pub const STB_GLOBAL: u8 = 1;
/// Untyped symbol.
pub const STT_NOTYPE: u8 = 0;
/// Data-object symbol.
pub const STT_OBJECT: u8 = 1;
/// Function symbol.
pub const STT_FUNC: u8 = 2;

// Dynamic tags.
/// End of the `.dynamic` array.
pub const DT_NULL: i64 = 0;
/// Address of the RELA relocation table.
pub const DT_RELA: i64 = 7;
/// Total size in bytes of the RELA table.
pub const DT_RELASZ: i64 = 8;
/// Size in bytes of one RELA entry.
pub const DT_RELAENT: i64 = 9;
/// Shared library dependency (its presence means dynamic linking).
pub const DT_NEEDED: i64 = 1;

// x86-64 relocation types.
/// `B + A`: base-relative relocation, the one static PIEs need.
pub const R_X86_64_RELATIVE: u32 = 8;
/// `S + A`: direct 64-bit relocation.
pub const R_X86_64_64: u32 = 1;

/// ELF64 file header.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Elf64Header {
    /// Object file type (`ET_DYN` for PIE).
    pub e_type: u16,
    /// Target machine (`EM_X86_64`).
    pub e_machine: u16,
    /// Entry point virtual address.
    pub e_entry: u64,
    /// Program header table file offset.
    pub e_phoff: u64,
    /// Section header table file offset.
    pub e_shoff: u64,
    /// Processor-specific flags.
    pub e_flags: u32,
    /// Number of program headers.
    pub e_phnum: u16,
    /// Number of section headers.
    pub e_shnum: u16,
    /// Index of the section-name string table.
    pub e_shstrndx: u16,
}

impl Elf64Header {
    /// Serialises the header (with identification bytes) to 64 bytes.
    pub fn to_bytes(&self) -> [u8; EHDR_SIZE] {
        let mut out = [0u8; EHDR_SIZE];
        out[0..4].copy_from_slice(&ELF_MAGIC);
        out[4] = ELFCLASS64;
        out[5] = ELFDATA2LSB;
        out[6] = EV_CURRENT;
        out[7] = ELFOSABI_SYSV;
        out[16..18].copy_from_slice(&self.e_type.to_le_bytes());
        out[18..20].copy_from_slice(&self.e_machine.to_le_bytes());
        out[20..24].copy_from_slice(&1u32.to_le_bytes()); // e_version
        out[24..32].copy_from_slice(&self.e_entry.to_le_bytes());
        out[32..40].copy_from_slice(&self.e_phoff.to_le_bytes());
        out[40..48].copy_from_slice(&self.e_shoff.to_le_bytes());
        out[48..52].copy_from_slice(&self.e_flags.to_le_bytes());
        out[52..54].copy_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out[54..56].copy_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        out[56..58].copy_from_slice(&self.e_phnum.to_le_bytes());
        out[58..60].copy_from_slice(&(SHDR_SIZE as u16).to_le_bytes());
        out[60..62].copy_from_slice(&self.e_shnum.to_le_bytes());
        out[62..64].copy_from_slice(&self.e_shstrndx.to_le_bytes());
        out
    }
}

/// ELF64 program (segment) header.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProgramHeader {
    /// Segment type (`PT_LOAD`, `PT_DYNAMIC`, …).
    pub p_type: u32,
    /// Permission flags (`PF_R | PF_W | PF_X`).
    pub p_flags: u32,
    /// File offset of the segment image.
    pub p_offset: u64,
    /// Virtual address of the segment.
    pub p_vaddr: u64,
    /// Physical address (unused; mirrors `p_vaddr`).
    pub p_paddr: u64,
    /// Bytes in the file image.
    pub p_filesz: u64,
    /// Bytes in memory (may exceed `p_filesz` for `.bss`).
    pub p_memsz: u64,
    /// Alignment.
    pub p_align: u64,
}

impl ProgramHeader {
    /// Whether this is a loadable (`PT_LOAD`) segment.
    pub fn is_load(&self) -> bool {
        self.p_type == PT_LOAD
    }

    /// Whether the segment is mapped writable (`PF_W`).
    pub fn is_writable(&self) -> bool {
        self.p_flags & PF_W != 0
    }

    /// Whether the segment is mapped executable (`PF_X`).
    pub fn is_executable(&self) -> bool {
        self.p_flags & PF_X != 0
    }

    /// Whether the segment is simultaneously writable and executable —
    /// the W^X violation EnGarde's dynamic-code-generation ban targets.
    pub fn is_wx(&self) -> bool {
        self.is_writable() && self.is_executable()
    }

    /// Serialises the program header to 56 bytes.
    pub fn to_bytes(&self) -> [u8; PHDR_SIZE] {
        let mut out = [0u8; PHDR_SIZE];
        out[0..4].copy_from_slice(&self.p_type.to_le_bytes());
        out[4..8].copy_from_slice(&self.p_flags.to_le_bytes());
        out[8..16].copy_from_slice(&self.p_offset.to_le_bytes());
        out[16..24].copy_from_slice(&self.p_vaddr.to_le_bytes());
        out[24..32].copy_from_slice(&self.p_paddr.to_le_bytes());
        out[32..40].copy_from_slice(&self.p_filesz.to_le_bytes());
        out[40..48].copy_from_slice(&self.p_memsz.to_le_bytes());
        out[48..56].copy_from_slice(&self.p_align.to_le_bytes());
        out
    }
}

/// ELF64 section header.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SectionHeader {
    /// Offset of the section name in `.shstrtab`.
    pub sh_name: u32,
    /// Section type (`SHT_PROGBITS`, …).
    pub sh_type: u32,
    /// Section flags (`SHF_ALLOC`, …).
    pub sh_flags: u64,
    /// Virtual address.
    pub sh_addr: u64,
    /// File offset.
    pub sh_offset: u64,
    /// Section size in bytes.
    pub sh_size: u64,
    /// Link to another section (interpretation depends on type).
    pub sh_link: u32,
    /// Extra information (interpretation depends on type).
    pub sh_info: u32,
    /// Alignment.
    pub sh_addralign: u64,
    /// Entry size for table sections.
    pub sh_entsize: u64,
}

impl SectionHeader {
    /// Serialises the section header to 64 bytes.
    pub fn to_bytes(&self) -> [u8; SHDR_SIZE] {
        let mut out = [0u8; SHDR_SIZE];
        out[0..4].copy_from_slice(&self.sh_name.to_le_bytes());
        out[4..8].copy_from_slice(&self.sh_type.to_le_bytes());
        out[8..16].copy_from_slice(&self.sh_flags.to_le_bytes());
        out[16..24].copy_from_slice(&self.sh_addr.to_le_bytes());
        out[24..32].copy_from_slice(&self.sh_offset.to_le_bytes());
        out[32..40].copy_from_slice(&self.sh_size.to_le_bytes());
        out[40..44].copy_from_slice(&self.sh_link.to_le_bytes());
        out[44..48].copy_from_slice(&self.sh_info.to_le_bytes());
        out[48..56].copy_from_slice(&self.sh_addralign.to_le_bytes());
        out[56..64].copy_from_slice(&self.sh_entsize.to_le_bytes());
        out
    }
}

/// ELF64 symbol-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Symbol {
    /// Offset of the symbol name in the linked string table.
    pub st_name: u32,
    /// Binding and type (`(binding << 4) | type`).
    pub st_info: u8,
    /// Visibility (unused here).
    pub st_other: u8,
    /// Index of the section the symbol is defined in.
    pub st_shndx: u16,
    /// Symbol value (virtual address for functions).
    pub st_value: u64,
    /// Symbol size in bytes.
    pub st_size: u64,
}

impl Symbol {
    /// Packs binding and type into `st_info`.
    pub fn info(binding: u8, typ: u8) -> u8 {
        (binding << 4) | (typ & 0xf)
    }

    /// The symbol's type (`STT_FUNC`, …).
    pub fn sym_type(&self) -> u8 {
        self.st_info & 0xf
    }

    /// The symbol's binding (`STB_GLOBAL`, …).
    pub fn binding(&self) -> u8 {
        self.st_info >> 4
    }

    /// Serialises the symbol to 24 bytes.
    pub fn to_bytes(&self) -> [u8; SYM_SIZE] {
        let mut out = [0u8; SYM_SIZE];
        out[0..4].copy_from_slice(&self.st_name.to_le_bytes());
        out[4] = self.st_info;
        out[5] = self.st_other;
        out[6..8].copy_from_slice(&self.st_shndx.to_le_bytes());
        out[8..16].copy_from_slice(&self.st_value.to_le_bytes());
        out[16..24].copy_from_slice(&self.st_size.to_le_bytes());
        out
    }
}

/// ELF64 RELA relocation entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Rela {
    /// Virtual address the relocation patches.
    pub r_offset: u64,
    /// Symbol index (high 32 bits) and relocation type (low 32 bits).
    pub r_info: u64,
    /// Constant addend.
    pub r_addend: i64,
}

impl Rela {
    /// Builds `r_info` from a symbol index and relocation type.
    pub fn info(sym: u32, typ: u32) -> u64 {
        ((sym as u64) << 32) | typ as u64
    }

    /// The relocation type (`R_X86_64_RELATIVE`, …).
    pub fn rel_type(&self) -> u32 {
        self.r_info as u32
    }

    /// The symbol index.
    pub fn sym_index(&self) -> u32 {
        (self.r_info >> 32) as u32
    }

    /// Serialises the relocation to 24 bytes.
    pub fn to_bytes(&self) -> [u8; RELA_SIZE] {
        let mut out = [0u8; RELA_SIZE];
        out[0..8].copy_from_slice(&self.r_offset.to_le_bytes());
        out[8..16].copy_from_slice(&self.r_info.to_le_bytes());
        out[16..24].copy_from_slice(&self.r_addend.to_le_bytes());
        out
    }
}

/// ELF64 `.dynamic` entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Dyn {
    /// Entry tag (`DT_RELA`, …).
    pub d_tag: i64,
    /// Entry value or pointer.
    pub d_val: u64,
}

impl Dyn {
    /// Serialises the entry to 16 bytes.
    pub fn to_bytes(&self) -> [u8; DYN_SIZE] {
        let mut out = [0u8; DYN_SIZE];
        out[0..8].copy_from_slice(&self.d_tag.to_le_bytes());
        out[8..16].copy_from_slice(&self.d_val.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_serialisation_layout() {
        let h = Elf64Header {
            e_type: ET_DYN,
            e_machine: EM_X86_64,
            e_entry: 0x1000,
            e_phoff: 64,
            e_shoff: 0x2000,
            e_flags: 0,
            e_phnum: 4,
            e_shnum: 9,
            e_shstrndx: 8,
        };
        let b = h.to_bytes();
        assert_eq!(&b[0..4], &ELF_MAGIC);
        assert_eq!(b[4], ELFCLASS64);
        assert_eq!(u16::from_le_bytes([b[16], b[17]]), ET_DYN);
        assert_eq!(u16::from_le_bytes([b[18], b[19]]), EM_X86_64);
        assert_eq!(u64::from_le_bytes(b[24..32].try_into().unwrap()), 0x1000);
        assert_eq!(u16::from_le_bytes([b[52], b[53]]), EHDR_SIZE as u16);
    }

    #[test]
    fn symbol_info_packing() {
        let info = Symbol::info(STB_GLOBAL, STT_FUNC);
        let s = Symbol {
            st_info: info,
            ..Default::default()
        };
        assert_eq!(s.binding(), STB_GLOBAL);
        assert_eq!(s.sym_type(), STT_FUNC);
    }

    #[test]
    fn rela_info_packing() {
        let r = Rela {
            r_offset: 0x4000,
            r_info: Rela::info(7, R_X86_64_RELATIVE),
            r_addend: -16,
        };
        assert_eq!(r.rel_type(), R_X86_64_RELATIVE);
        assert_eq!(r.sym_index(), 7);
        let b = r.to_bytes();
        assert_eq!(i64::from_le_bytes(b[16..24].try_into().unwrap()), -16);
    }

    #[test]
    fn struct_sizes_match_abi() {
        assert_eq!(Elf64Header::default().to_bytes().len(), 64);
        assert_eq!(ProgramHeader::default().to_bytes().len(), 56);
        assert_eq!(SectionHeader::default().to_bytes().len(), 64);
        assert_eq!(Symbol::default().to_bytes().len(), 24);
        assert_eq!(Rela::default().to_bytes().len(), 24);
        assert_eq!(Dyn::default().to_bytes().len(), 16);
    }
}
