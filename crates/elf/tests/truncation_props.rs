//! Property tests for the fail-closed parsing contract.
//!
//! The parser runs *inside* the enclave over attacker-supplied bytes: a
//! panic there crashes the inspector before a verdict is signed — a
//! fail-open outcome. These properties drive the parser (and every
//! accessor that re-reads raw bytes) with random truncations and random
//! bit flips of structurally rich images; the only acceptable behaviours
//! are `Ok` or a descriptive `Err`, never a panic.

use engarde_elf::build::ElfBuilder;
use engarde_elf::parse::ElfFile;
use engarde_rand::harness::Property;
use engarde_rand::Rng;

/// A structurally rich image: text, data, bss, symbols, relocations —
/// every table the parser walks is present.
fn rich_image(text_len: usize, relocs: usize) -> Vec<u8> {
    let mut text = vec![0x90u8; text_len]; // nops
    if let Some(last) = text.last_mut() {
        *last = 0xc3; // ret
    }
    let mut b = ElfBuilder::new();
    b.text(text)
        .data(vec![0xAB; 128])
        .bss_size(64)
        .entry(0)
        .function("main", 0, text_len as u64);
    for r in 0..relocs {
        b.relative_relocation(8 * r as u64, r as i64);
    }
    b.build()
}

/// Exercises every byte-reading code path on a (possibly corrupt) image.
/// Returns normally whether parsing succeeds or fails; panics propagate.
fn poke(image: &[u8]) {
    let Ok(elf) = ElfFile::parse(image) else {
        return;
    };
    let _ = elf.require_pie();
    let _ = elf.require_static();
    let _ = elf.rela_entries();
    let _ = elf.text_sections().count();
    let _ = elf.function_symbols().count();
    let _ = elf.wx_segments().count();
}

#[test]
fn random_truncations_fail_closed_without_panicking() {
    Property::new("random_truncations_fail_closed")
        .cases(192)
        .run(|rng| {
            let text_len = rng.gen_range(1usize..512);
            let relocs = rng.gen_range(0usize..12);
            let img = rich_image(text_len, relocs);
            let len = rng.gen_range(0usize..img.len());
            let truncated = &img[..len];
            // Any truncation removes part of the section-header table or
            // the section contents it points to, so parsing must reject.
            assert!(
                ElfFile::parse(truncated).is_err(),
                "truncation to {len}/{} bytes must be rejected",
                img.len()
            );
            poke(truncated);
        });
}

#[test]
fn random_byte_flips_never_panic() {
    Property::new("random_byte_flips_never_panic")
        .cases(192)
        .run(|rng| {
            let mut img = rich_image(rng.gen_range(1usize..256), rng.gen_range(0usize..8));
            // Corrupt up to 8 positions anywhere in the image, header
            // included — offsets, sizes, counts, tags are all fair game.
            for _ in 0..rng.gen_range(1usize..8) {
                let pos = rng.gen_range(0usize..img.len());
                img[pos] = rng.gen();
            }
            poke(&img);
        });
}

#[test]
fn random_garbage_never_panics() {
    Property::new("random_garbage_never_panics")
        .cases(256)
        .run(|rng| {
            let len = rng.gen_range(0usize..4096);
            let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            poke(&garbage);
            // Garbage wearing a valid 4-byte magic still may not panic.
            let mut magicked = garbage;
            if magicked.len() >= 4 {
                magicked[..4].copy_from_slice(b"\x7fELF");
            }
            poke(&magicked);
        });
}
