//! Bridges the workload traffic generator to the service: maps each
//! [`PolicyRegime`] to its agreed policy modules and turns a
//! [`TrafficItem`] into a submittable [`SessionRequest`].
//!
//! The workloads crate cannot depend on the core policy types (it sits
//! below them in the crate graph), so the regime → modules mapping lives
//! here on the serve side.

use crate::session::{PolicyFactory, SessionRequest};
use engarde_core::loader::LoaderConfig;
use engarde_core::policy::{
    CodeReachability, IfccPolicy, LibraryLinkingPolicy, PolicyModule, SecretDependentBranch,
    SecretLeakage, StackProtectionPolicy, WxSegments,
};
use engarde_core::provision::BootstrapSpec;
use engarde_crypto::sha256::Digest;
use engarde_sgx::epc::PAGE_SIZE;
use engarde_workloads::libc::{Instrumentation, LibcLibrary};
use engarde_workloads::traffic::{PolicyRegime, TrafficItem};
use std::collections::HashMap;
use std::sync::Arc;

/// The musl function-hash database used by the library-linking regime.
/// Building the synthetic libc is the expensive part; callers should
/// compute this once and share it.
pub fn musl_hashes() -> HashMap<String, Digest> {
    LibcLibrary::build(Instrumentation::None).function_hashes()
}

/// The policy factory for a regime. `musl` is the hash database from
/// [`musl_hashes`] (only the library-linking regime reads it).
pub fn policy_factory(regime: PolicyRegime, musl: &Arc<HashMap<String, Digest>>) -> PolicyFactory {
    match regime {
        PolicyRegime::LibraryLinking => {
            let musl = Arc::clone(musl);
            Arc::new(move || {
                vec![
                    Box::new(LibraryLinkingPolicy::new("musl-libc", (*musl).clone()))
                        as Box<dyn PolicyModule>,
                ]
            })
        }
        PolicyRegime::StackProtection => {
            Arc::new(|| vec![Box::new(StackProtectionPolicy::new()) as Box<dyn PolicyModule>])
        }
        PolicyRegime::Ifcc => {
            Arc::new(|| vec![Box::new(IfccPolicy::new()) as Box<dyn PolicyModule>])
        }
        PolicyRegime::Analysis => Arc::new(|| {
            vec![
                Box::new(CodeReachability::new()) as Box<dyn PolicyModule>,
                Box::new(WxSegments::new()) as Box<dyn PolicyModule>,
                Box::new(SecretLeakage::new()) as Box<dyn PolicyModule>,
                Box::new(SecretDependentBranch::new()) as Box<dyn PolicyModule>,
            ]
        }),
    }
}

/// Builds the agreed bootstrap spec for an image under a regime's
/// modules: client region sized to the image with headroom, 512-bit
/// ephemeral keys (the test/bench size; the paper deploys 2048).
pub fn spec_for(
    image_len: usize,
    regime: PolicyRegime,
    musl: &Arc<HashMap<String, Digest>>,
) -> BootstrapSpec {
    let modules = policy_factory(regime, musl)();
    let region_pages = (image_len / PAGE_SIZE) * 2 + 64;
    BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &modules,
        region_pages,
        512,
    )
}

/// Turns one traffic item into a submittable session request.
pub fn request_for(item: &TrafficItem, musl: &Arc<HashMap<String, Digest>>) -> SessionRequest {
    SessionRequest {
        name: item.name.clone(),
        binary: item.image.clone(),
        spec: spec_for(item.image.len(), item.regime, musl),
        policies: policy_factory(item.regime, musl),
        client_seed: item.client_seed,
        stall_after: item.stall_after,
        shard_hint: None,
    }
}
