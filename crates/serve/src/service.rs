//! The provisioning service: admission control in front of a shard
//! fleet, with two interchangeable scheduler backends.
//!
//! - **Virtual time** ([`SchedMode::VirtualTime`]): sessions "arrive" on
//!   a fixed model-cycle cadence and are assigned to the
//!   earliest-available shard. Durations are the shards' actual machine
//!   cycle deltas, so throughput, latency, queueing, and `Busy`
//!   rejections are all functions of the cost model alone —
//!   bit-reproducible for a fixed seed, independent of host load or core
//!   count. This is the repo's headline measurement mode, consistent
//!   with every other OpenSGX-style cycle figure.
//! - **Threaded** ([`SchedMode::Threaded`]): real `std::thread` workers
//!   pull from a bounded queue behind a mutex+condvar; results come back
//!   over an `mpsc` channel. Wall-clock numbers from this mode are
//!   auxiliary (they depend on host cores) but exercise the actual
//!   concurrency: machines are never shared, one per worker thread.
//!
//! Both backends share [`Shard::run_session`] for the per-session
//! protocol, eviction, and retry logic, and feed the same
//! [`ServeMetrics`].

use crate::error::ServeError;
use crate::faults::{FaultDirective, FaultKind, FaultPlan};
use crate::metrics::{lock_recover, EventKind, ServeMetrics};
use crate::persist::{StoreConfig, DEFAULT_STORE_CACHE_CAPACITY};
use crate::pool::{SessionOutcome, SessionReport, SessionRunConfig, Shard};
use crate::session::SessionRequest;
use engarde_core::cache::{lock_cache, shared_cache, SharedVerdictCache};
use engarde_core::provision::StageCycles;
use engarde_crypto::sha256::Sha256;
use engarde_sgx::machine::MachineConfig;
use engarde_store::{
    chaos, StoreOptions, VerdictStore, STORE_FLUSH_PER_RECORD, STORE_HYDRATE_PER_RECORD,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// How long a threaded worker sleeps on the queue condvar before
/// re-checking for shutdown. Bounds how late a worker can notice a
/// missed wakeup — nothing blocks forever on the queue.
const WORKER_POLL: Duration = Duration::from_millis(25);

/// Which scheduler drives the shard fleet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedMode {
    /// Deterministic cost-model scheduling: session `i` arrives at
    /// `i * arrival_gap` model cycles and runs on the earliest-available
    /// shard. Bit-reproducible.
    VirtualTime {
        /// Model cycles between successive arrivals (the offered load).
        arrival_gap: u64,
    },
    /// Real worker threads and wall-clock timing.
    Threaded,
}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of shards (machines) in the fleet.
    pub shards: usize,
    /// Scheduler backend.
    pub mode: SchedMode,
    /// Base machine configuration; shard `i` runs on
    /// [`MachineConfig::shard`]`(i)`.
    pub machine: MachineConfig,
    /// Admission bound: sessions allowed to wait. Beyond it, submission
    /// fails with [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// Per-session execution knobs (retries, budgets, recycling).
    pub run: SessionRunConfig,
    /// `Some(capacity)`: share one content-addressed verdict cache with
    /// this LRU bound across the whole fleet (behind a lock in thread
    /// mode; probed in deterministic submission order in virtual-time
    /// mode). `None` disables caching.
    pub verdict_cache: Option<usize>,
    /// Deterministic fault-injection plan. `None` (and
    /// [`FaultPlan::disabled`]) leave the serve path bit-identical to a
    /// build without the fault layer: directives are a pure function of
    /// the plan seed and the arrival index, never of machine state.
    pub faults: Option<FaultPlan>,
    /// `Some`: persist verdicts to a sealed on-disk store. At start the
    /// store is recovered and hydrated into the fleet verdict cache
    /// (enabling a default-capacity cache if `verdict_cache` is `None`),
    /// with hydration cost charged to virtual time; at runtime dirty
    /// verdicts flush write-behind in `flush_batch` batches; at drain
    /// the remainder flushes and the store optionally compacts. A store
    /// that fails to open degrades the service to memory-only operation
    /// with a typed event — never a panic.
    pub store: Option<StoreConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            mode: SchedMode::VirtualTime {
                arrival_gap: 2_000_000,
            },
            machine: MachineConfig::default(),
            queue_capacity: 8,
            run: SessionRunConfig::default(),
            verdict_cache: None,
            faults: None,
            store: None,
        }
    }
}

/// Everything the service hands back after [`ProvisioningService::drain`].
pub struct ServiceResult {
    /// Per-session reports. Virtual mode: submission order. Threaded
    /// mode: sorted by session name (completion order is racy).
    pub reports: Vec<SessionReport>,
    /// The service metrics (counters, percentiles, event log).
    pub metrics: Arc<ServeMetrics>,
    /// The shard fleet with its providers — virtual mode only (threaded
    /// shards live and die on their worker threads); empty otherwise.
    /// Tests use these to assert host-side state across tenants.
    pub shards: Vec<Shard>,
    /// Fleet makespan in model cycles: when the last shard went idle
    /// (virtual) or the busiest shard's total cycles (threaded).
    pub makespan_cycles: u64,
    /// Wall-clock time from service start to drain completion.
    pub wall_nanos: u64,
}

impl ServiceResult {
    /// Hex SHA-256 over every report's deterministic fields (name,
    /// cycles, latency, outcome class, signed verdict) plus the fleet
    /// makespan. Two runs with the same seeds — fault layer enabled or
    /// not — must produce the same fingerprint; the fault tests and
    /// benches assert exactly that.
    pub fn fingerprint(&self) -> String {
        let mut h = Sha256::new();
        for r in &self.reports {
            h.update(r.name.as_bytes());
            h.update(&r.cycles.to_be_bytes());
            h.update(&r.latency_cycles.to_be_bytes());
            h.update(&[match &r.outcome {
                SessionOutcome::Compliant => 0u8,
                SessionOutcome::NonCompliant => 1,
                SessionOutcome::Evicted { .. } => 2,
                SessionOutcome::Failed { .. } => 3,
                SessionOutcome::Shed => 4,
            }]);
            if let Some(v) = &r.verdict {
                h.update(&[u8::from(v.compliant)]);
                h.update(v.detail.as_bytes());
                h.update(&v.signature);
            }
        }
        h.update(&self.makespan_cycles.to_be_bytes());
        h.finalize().to_hex()
    }

    /// Hex SHA-256 over verdict *content* only — session name, outcome
    /// class, and the signed verdict's polarity and detail — with no
    /// cycle or latency fields. A warm-restarted fleet replaying
    /// hydrated verdicts must reproduce a cold run's value bit for bit
    /// even though its timing (probe cost instead of full inspection)
    /// differs; the warm-start tests and `bench_store_warmstart` assert
    /// exactly that.
    pub fn verdict_fingerprint(&self) -> String {
        let mut h = Sha256::new();
        for r in &self.reports {
            h.update(r.name.as_bytes());
            h.update(&[match &r.outcome {
                SessionOutcome::Compliant => 0u8,
                SessionOutcome::NonCompliant => 1,
                SessionOutcome::Evicted { .. } => 2,
                SessionOutcome::Failed { .. } => 3,
                SessionOutcome::Shed => 4,
            }]);
            if let Some(v) = &r.verdict {
                h.update(&[u8::from(v.compliant)]);
                h.update(v.detail.as_bytes());
            }
        }
        h.finalize().to_hex()
    }
}

/// The service's live persistence state.
struct StoreState {
    store: VerdictStore,
    cfg: StoreConfig,
    /// Store faults scheduled by the fault plan during this run; they
    /// damage bytes at rest, so they are applied (and their recovery
    /// proven) at drain, after the final flush.
    pending_faults: Vec<FaultDirective>,
}

struct VirtualState {
    shards: Vec<Shard>,
    /// Virtual instant each shard becomes free.
    free_at: Vec<u64>,
    /// `(arrival, start)` of every admitted session, for queue modeling.
    scheduled: Vec<(u64, u64)>,
    arrival_gap: u64,
    reports: Vec<SessionReport>,
}

type Job = (
    SessionRequest,
    SessionRunConfig,
    Arc<ServeMetrics>,
    Option<FaultDirective>,
);

struct SharedQueue {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Workers still able to take jobs. Decremented by a drop guard on
    /// every exit path — including panics — so `submit` can detect a
    /// dead pool instead of queueing work nobody will run.
    live: AtomicUsize,
}

/// Panic-safe liveness accounting for one worker thread.
struct WorkerGuard(Arc<SharedQueue>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::SeqCst);
    }
}

enum WorkerMsg {
    Report(Box<SessionReport>),
    Done { cycles: u64 },
}

struct ThreadedState {
    shared: Arc<SharedQueue>,
    workers: Vec<thread::JoinHandle<()>>,
    rx: mpsc::Receiver<WorkerMsg>,
}

enum Backend {
    Virtual(VirtualState),
    Threaded(ThreadedState),
}

/// The multi-tenant provisioning service.
pub struct ProvisioningService {
    cfg: ServiceConfig,
    metrics: Arc<ServeMetrics>,
    backend: Backend,
    verdict_cache: Option<SharedVerdictCache>,
    store: Option<StoreState>,
    submitted: u64,
    started: std::time::Instant,
    draining: bool,
}

impl ProvisioningService {
    /// Boots the fleet: `cfg.shards` machines with per-shard derived
    /// seeds, plus worker threads in threaded mode.
    pub fn start(cfg: ServiceConfig) -> Self {
        let metrics = Arc::new(ServeMetrics::new());
        let shards = cfg.shards.max(1);
        // One cache for the whole fleet: the point is cross-shard (and
        // cross-tenant) verdict sharing. A persistent store needs a
        // cache to hydrate into, so it enables a default-capacity one.
        let cache_capacity = cfg
            .verdict_cache
            .or_else(|| cfg.store.as_ref().map(|_| DEFAULT_STORE_CACHE_CAPACITY));
        let verdict_cache = cache_capacity.map(shared_cache);
        // Open (and recover) the store before any shard boots; a store
        // that cannot open degrades the service to memory-only with a
        // typed event rather than failing the whole fleet.
        let mut hydrate_cycles = 0u64;
        let store = cfg.store.as_ref().and_then(|sc| {
            let options = StoreOptions {
                segment_max_records: sc.segment_max_records.max(1),
            };
            match VerdictStore::open(&sc.dir, &sc.seal_key, options) {
                Ok((store, recovery)) => {
                    metrics.mark_store_enabled();
                    metrics.record(
                        EventKind::StoreOpened,
                        "",
                        None,
                        &format!(
                            "recovered {} records ({} live); damage found: {}",
                            recovery.records_recovered,
                            store.len(),
                            recovery.found_damage()
                        ),
                    );
                    Some(StoreState {
                        store,
                        cfg: sc.clone(),
                        pending_faults: Vec::new(),
                    })
                }
                Err(e) => {
                    metrics.record(
                        EventKind::StoreDegraded,
                        "",
                        None,
                        &format!("store failed to open, running memory-only: {e}"),
                    );
                    None
                }
            }
        });
        if let (Some(state), Some(cache)) = (&store, &verdict_cache) {
            let mut cache = lock_cache(cache);
            // Track dirty inserts from here on so live verdicts can be
            // flushed write-behind; hydrated entries are already
            // durable and are not re-logged.
            cache.track_dirty();
            let n = state.store.hydrate_into(&mut cache) as u64;
            metrics.record_store_hydrated(n);
            // Warm start is not free: every hydrated record pays a
            // read + authenticate + decode charge on the virtual clock
            // before the first session can run.
            hydrate_cycles = n * STORE_HYDRATE_PER_RECORD;
        }
        let backend = match cfg.mode {
            SchedMode::VirtualTime { arrival_gap } => Backend::Virtual(VirtualState {
                shards: (0..shards)
                    .map(|i| Shard::new(i, &cfg.machine, verdict_cache.clone()))
                    .collect(),
                free_at: vec![hydrate_cycles; shards],
                scheduled: Vec::new(),
                arrival_gap,
                reports: Vec::new(),
            }),
            SchedMode::Threaded => {
                let shared = Arc::new(SharedQueue {
                    queue: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                    shutdown: AtomicBool::new(false),
                    live: AtomicUsize::new(shards),
                });
                let (tx, rx) = mpsc::channel();
                let workers = (0..shards)
                    .map(|i| {
                        let shared = Arc::clone(&shared);
                        let tx = tx.clone();
                        let machine = cfg.machine.clone();
                        let cache = verdict_cache.clone();
                        thread::spawn(move || worker_loop(i, machine, cache, shared, tx))
                    })
                    .collect();
                Backend::Threaded(ThreadedState {
                    shared,
                    workers,
                    rx,
                })
            }
        };
        ProvisioningService {
            cfg,
            metrics,
            backend,
            verdict_cache,
            store,
            submitted: 0,
            started: std::time::Instant::now(),
            draining: false,
        }
    }

    /// The service metrics handle.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Shards/workers still able to run sessions. Virtual mode counts
    /// non-dead shards; threaded mode reads the pool's liveness counter
    /// (kept honest by per-thread drop guards).
    pub fn live_workers(&self) -> usize {
        match &self.backend {
            Backend::Virtual(v) => v.shards.iter().filter(|s| !s.is_dead()).count(),
            Backend::Threaded(t) => t.shared.live.load(Ordering::SeqCst),
        }
    }

    /// Submits one session.
    ///
    /// Virtual mode runs it synchronously under the cost-model clock;
    /// threaded mode enqueues it for the worker fleet.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] when admission control rejects the session,
    /// [`ServeError::ShuttingDown`] after drain has begun.
    pub fn submit(&mut self, req: SessionRequest) -> Result<(), ServeError> {
        if self.draining {
            return Err(ServeError::ShuttingDown);
        }
        let arrival_index = self.submitted;
        // The directive is a pure function of (plan seed, arrival
        // index): scheduling, machine state, and host timing cannot
        // perturb the fault schedule, so it replays bit-identically.
        let mut directive = self
            .cfg
            .faults
            .as_ref()
            .and_then(|plan| plan.directive_for(arrival_index));
        // Store faults damage bytes at rest, not this session's
        // transport: the session runs unfaulted, and the scheduled
        // damage is applied (and its recovery proven) at drain, after
        // the final flush. With no store attached there is nothing to
        // damage and the directive is a no-op.
        if let Some(d) = directive.filter(|d| d.kind.is_store()) {
            directive = None;
            if let Some(state) = &mut self.store {
                state.pending_faults.push(d);
            }
        }
        match &mut self.backend {
            Backend::Virtual(v) => {
                let arrival = arrival_index * v.arrival_gap;
                // Sessions admitted earlier that are still waiting (their
                // start lies after this arrival) occupy queue slots now.
                let waiting = v
                    .scheduled
                    .iter()
                    .filter(|(_, start)| *start > arrival)
                    .count();
                if waiting >= self.cfg.queue_capacity {
                    self.metrics.record(
                        EventKind::RejectedBusy,
                        &req.name,
                        None,
                        &format!("queue depth {waiting}"),
                    );
                    return Err(ServeError::Busy {
                        queue_depth: waiting,
                    });
                }
                // Earliest-available *live* shard; ties go to the
                // lowest index. Dead shards (injected worker deaths)
                // are routed around; a fully dead fleet is a typed
                // error, never a hang or a panic.
                let Some(shard_idx) = (0..v.shards.len())
                    .filter(|&i| !v.shards[i].is_dead())
                    .min_by_key(|&i| (v.free_at[i], i))
                else {
                    self.metrics
                        .record(EventKind::Shed, &req.name, None, "no live shards");
                    return Err(ServeError::PoolDead);
                };
                self.metrics.observe_queue_depth(waiting + 1);
                self.metrics
                    .record(EventKind::Admitted, &req.name, None, "");
                self.submitted += 1;

                let start = v.free_at[shard_idx].max(arrival);
                let before = v.shards[shard_idx].total_cycles();
                let mut report = v.shards[shard_idx].run_session_with_fault(
                    &req,
                    &self.cfg.run,
                    &self.metrics,
                    directive.as_ref(),
                );
                let duration = v.shards[shard_idx].total_cycles() - before;
                let end = start + duration;
                v.free_at[shard_idx] = end;
                // Write-behind flush: once enough fresh verdicts have
                // queued up, seal them to the store and charge the
                // flush to the shard that just ran — deterministic
                // virtual time, bounded dirty queue.
                let mut store_died = false;
                if let (Some(state), Some(cache)) = (&mut self.store, &self.verdict_cache) {
                    let depth = lock_cache(cache).dirty_len();
                    self.metrics.observe_flush_queue_depth(depth as u64);
                    if depth >= state.cfg.flush_batch.max(1) {
                        let dirty = lock_cache(cache).take_dirty();
                        let n = dirty.len() as u64;
                        match state.store.append_batch(&dirty) {
                            Ok(()) => {
                                self.metrics.record_store_flushed(n);
                                v.free_at[shard_idx] += n * STORE_FLUSH_PER_RECORD;
                            }
                            Err(e) => {
                                // Persistence degrades; serving does not.
                                self.metrics.record(
                                    EventKind::StoreDegraded,
                                    &req.name,
                                    Some(shard_idx),
                                    &format!("write-behind flush failed: {e}"),
                                );
                                store_died = true;
                            }
                        }
                    }
                }
                if store_died {
                    self.store = None;
                }
                v.scheduled.push((arrival, start));
                report.latency_cycles = end - arrival;
                self.metrics
                    .record_timing(&report.stages, report.cycles, report.latency_cycles, 0);
                v.reports.push(report);
                Ok(())
            }
            Backend::Threaded(t) => {
                if t.shared.live.load(Ordering::SeqCst) == 0 {
                    self.metrics
                        .record(EventKind::Shed, &req.name, None, "no live workers");
                    return Err(ServeError::PoolDead);
                }
                let mut queue = lock_recover(&t.shared.queue);
                if t.shared.shutdown.load(Ordering::SeqCst) {
                    return Err(ServeError::ShuttingDown);
                }
                if queue.len() >= self.cfg.queue_capacity {
                    let depth = queue.len();
                    drop(queue);
                    self.metrics.record(
                        EventKind::RejectedBusy,
                        &req.name,
                        None,
                        &format!("queue depth {depth}"),
                    );
                    return Err(ServeError::Busy { queue_depth: depth });
                }
                self.metrics
                    .record(EventKind::Admitted, &req.name, None, "");
                queue.push_back((
                    req,
                    self.cfg.run.clone(),
                    Arc::clone(&self.metrics),
                    directive,
                ));
                self.metrics.observe_queue_depth(queue.len());
                self.submitted += 1;
                drop(queue);
                t.shared.available.notify_one();
                Ok(())
            }
        }
    }

    /// Graceful drain: stops admission, lets queued sessions finish,
    /// joins the workers, and returns every report plus the metrics.
    pub fn drain(mut self) -> ServiceResult {
        self.draining = true;
        self.metrics
            .record(EventKind::DrainStarted, "", None, "graceful drain");
        match self.backend {
            Backend::Virtual(v) => {
                // Final write-behind flush (plus optional compaction and
                // any scheduled at-rest fault injection + recovery
                // proof); the flush cost lands on the makespan.
                let store_cost =
                    finish_store(self.store.take(), &self.verdict_cache, &self.metrics);
                if let Some(cache) = &self.verdict_cache {
                    self.metrics.set_cache_stats(&lock_cache(cache).stats());
                }
                let makespan = v.free_at.iter().copied().max().unwrap_or(0) + store_cost;
                ServiceResult {
                    reports: v.reports,
                    metrics: self.metrics,
                    shards: v.shards,
                    makespan_cycles: makespan,
                    wall_nanos: self.started.elapsed().as_nanos() as u64,
                }
            }
            Backend::Threaded(t) => {
                t.shared.shutdown.store(true, Ordering::SeqCst);
                t.shared.available.notify_all();
                for handle in t.workers {
                    let _ = handle.join();
                }
                // Workers have quiesced; the cache's counters are final
                // and every verdict is visible for the final flush.
                let _ = finish_store(self.store.take(), &self.verdict_cache, &self.metrics);
                if let Some(cache) = &self.verdict_cache {
                    self.metrics.set_cache_stats(&lock_cache(cache).stats());
                }
                let mut reports = Vec::new();
                let mut makespan = 0u64;
                while let Ok(msg) = t.rx.try_recv() {
                    match msg {
                        WorkerMsg::Report(r) => reports.push(*r),
                        WorkerMsg::Done { cycles, .. } => makespan = makespan.max(cycles),
                    }
                }
                // Jobs still queued after every worker exited were
                // admitted but never ran (the pool died under them).
                // They get typed failure reports, not silence.
                for (req, _, _, _) in lock_recover(&t.shared.queue).drain(..) {
                    let error = ServeError::PoolDead.to_string();
                    self.metrics
                        .record(EventKind::Failed, &req.name, None, &error);
                    reports.push(SessionReport {
                        name: req.name,
                        shard: usize::MAX,
                        outcome: SessionOutcome::Failed { error },
                        stages: StageCycles::default(),
                        cycles: 0,
                        latency_cycles: 0,
                        wall_nanos: 0,
                        retries: 0,
                        blocks_delivered: 0,
                        enclave_key_fp: None,
                        measurement: None,
                        verdict: None,
                        client_verified: false,
                        instructions: 0,
                        cache_hit: false,
                    });
                }
                reports.sort_by(|a, b| a.name.cmp(&b.name));
                ServiceResult {
                    reports,
                    metrics: self.metrics,
                    shards: Vec::new(),
                    makespan_cycles: makespan,
                    wall_nanos: self.started.elapsed().as_nanos() as u64,
                }
            }
        }
    }
}

/// Drain-time store finalization: flush the remaining dirty verdicts,
/// optionally compact, mirror the store counters into the metrics, then
/// apply any at-rest faults the plan scheduled during the run and prove
/// they recover (typed counters, longest authenticated prefix, never a
/// panic). Returns the model cycles the final flush cost, so virtual
/// mode can charge it to the makespan.
fn finish_store(
    state: Option<StoreState>,
    verdict_cache: &Option<SharedVerdictCache>,
    metrics: &ServeMetrics,
) -> u64 {
    let Some(state) = state else { return 0 };
    let StoreState {
        mut store,
        cfg,
        pending_faults,
    } = state;
    let mut cost = 0u64;
    if let Some(cache) = verdict_cache {
        let dirty = lock_cache(cache).take_dirty();
        if !dirty.is_empty() {
            let n = dirty.len() as u64;
            match store.append_batch(&dirty) {
                Ok(()) => {
                    metrics.record_store_flushed(n);
                    cost += n * STORE_FLUSH_PER_RECORD;
                }
                Err(e) => metrics.record(
                    EventKind::StoreDegraded,
                    "",
                    None,
                    &format!("drain flush failed: {e}"),
                ),
            }
        }
    }
    if cfg.compact_on_drain {
        if let Err(e) = store.compact() {
            metrics.record(
                EventKind::StoreDegraded,
                "",
                None,
                &format!("compaction failed: {e}"),
            );
        }
    }
    metrics.set_store_stats(&store.stats());
    if pending_faults.is_empty() {
        return cost;
    }
    // At-rest damage is injected against the closed files, the way a
    // crash or media fault lands between runs; a fresh recovery scan
    // then repairs the store in place and its typed findings are the
    // detection evidence.
    let dir = store.dir().to_path_buf();
    drop(store);
    let mut applied: Vec<(FaultKind, bool)> = Vec::new();
    for d in &pending_faults {
        let outcome = match d.kind {
            FaultKind::StoreTornWrite => chaos::torn_write(&dir, d.block as u64),
            FaultKind::StoreBitFlip => chaos::flip_bit(&dir, d.block as u64, d.bit as u8),
            FaultKind::StoreLostSegment => chaos::lose_segment(&dir, d.block as u64),
            _ => Ok(None),
        };
        match outcome {
            Ok(Some(o)) => {
                metrics.record_fault_injected(d.kind);
                metrics.record(
                    EventKind::FaultInjected,
                    "",
                    None,
                    &format!("{}: {}", d.kind.name(), o.detail),
                );
                applied.push((d.kind, o.detectable));
            }
            // Nothing on disk to damage yet (an empty store).
            Ok(None) => {}
            Err(e) => metrics.record(
                EventKind::StoreDegraded,
                "",
                None,
                &format!("chaos injection failed: {e}"),
            ),
        }
    }
    if applied.is_empty() {
        return cost;
    }
    let options = StoreOptions {
        segment_max_records: cfg.segment_max_records.max(1),
    };
    match VerdictStore::open(&dir, &cfg.seal_key, options) {
        Ok((reopened, report)) => {
            for (kind, detectable) in &applied {
                // An injection its own helper calls observable must
                // surface in the recovery report; silent ones (a lost
                // final segment) honestly stay undetected.
                if *detectable && report.found_damage() {
                    metrics.record_fault_detected(*kind);
                }
                // Recovery completed with typed counters and only
                // authenticated records — the clean-recovery outcome.
                metrics.record_fault_recovered(*kind);
            }
            metrics.set_store_stats(&reopened.stats());
            metrics.record(
                EventKind::StoreOpened,
                "",
                None,
                &format!(
                    "post-fault recovery: {} live records, damage found: {}",
                    reopened.len(),
                    report.found_damage()
                ),
            );
        }
        Err(e) => metrics.record(
            EventKind::StoreDegraded,
            "",
            None,
            &format!("post-fault recovery failed: {e}"),
        ),
    }
    cost
}

/// Threaded-mode worker: builds its shard (providers are not `Send`, so
/// each machine is born and dies on its own thread), then pulls jobs
/// until shutdown with an empty queue.
fn worker_loop(
    index: usize,
    machine: MachineConfig,
    verdict_cache: Option<SharedVerdictCache>,
    shared: Arc<SharedQueue>,
    tx: mpsc::Sender<WorkerMsg>,
) {
    let _guard = WorkerGuard(Arc::clone(&shared));
    let mut shard = Shard::new(index, &machine, verdict_cache);
    loop {
        let job = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // Bounded wait: a missed notification (or a peer that
                // died holding the lock) costs at most one poll
                // interval, never a hung worker.
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, WORKER_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some((req, run_cfg, metrics, directive)) = job else {
            break;
        };
        let report = shard.run_session_with_fault(&req, &run_cfg, &metrics, directive.as_ref());
        metrics.record_timing(
            &report.stages,
            report.cycles,
            report.latency_cycles,
            report.wall_nanos,
        );
        let died = shard.is_dead();
        if tx.send(WorkerMsg::Report(Box::new(report))).is_err() {
            break;
        }
        if died {
            // The injected death takes effect after the report ships:
            // the session's typed failure is visible, then the worker
            // is gone and the liveness guard announces it.
            break;
        }
    }
    let _ = tx.send(WorkerMsg::Done {
        cycles: shard.total_cycles(),
    });
}
