//! The provisioning service: admission control in front of a shard
//! fleet, with two interchangeable work-stealing scheduler backends.
//!
//! - **Virtual time** ([`SchedMode::VirtualTime`]): sessions "arrive" on
//!   a fixed model-cycle cadence; admission queues each one (or batches
//!   it with same-key peers) on a per-shard deque, and an incremental
//!   event loop runs the fleet forward: the earliest-free live worker
//!   pops its own deque, or steals a whole item from a victim chosen as
//!   a pure function of `(seed, tick)` when its deque is empty.
//!   Durations are the shards' actual machine cycle deltas, so
//!   throughput, latency, queueing, and `Busy` rejections are all
//!   functions of the cost model alone — bit-reproducible for a fixed
//!   seed, independent of host load or core count. This is the repo's
//!   headline measurement mode, consistent with every other
//!   OpenSGX-style cycle figure.
//! - **Threaded** ([`SchedMode::Threaded`]): real `std::thread` workers,
//!   one deque per worker behind a shared mutex+condvar; an idle worker
//!   steals from the deepest peer deque. Results come back over an
//!   `mpsc` channel. Wall-clock numbers from this mode are auxiliary
//!   (they depend on host cores) but exercise the actual concurrency:
//!   machines are never shared, one per worker thread.
//!
//! Worker death is steal-aware in both backends: a dead worker's deque
//! is *not* lost — its queued items stay stealable and peers drain
//! them, so only the session that carried the death fault fails. Only a
//! fully dead fleet turns queued sessions into typed `PoolDead`
//! failures.
//!
//! Both backends share [`Shard::run_session`] for the per-session
//! protocol, eviction, and retry logic, and feed the same
//! [`ServeMetrics`].

use crate::error::ServeError;
use crate::faults::{self, FaultDirective, FaultKind, FaultPlan};
use crate::metrics::{lock_recover, EventKind, ServeMetrics};
use crate::persist::{StoreConfig, DEFAULT_STORE_CACHE_CAPACITY};
use crate::pool::{
    BatchPolicy, QueuedSession, SessionOutcome, SessionReport, SessionRunConfig, Shard, WorkDeques,
    WorkItem,
};
use crate::session::SessionRequest;
use engarde_core::cache::{lock_cache, shared_cache, SharedVerdictCache};
use engarde_core::provision::StageCycles;
use engarde_crypto::sha256::Sha256;
use engarde_sgx::machine::MachineConfig;
use engarde_store::{
    chaos, StoreOptions, VerdictStore, STORE_FLUSH_PER_RECORD, STORE_HYDRATE_PER_RECORD,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// How long a threaded worker sleeps on the queue condvar before
/// re-checking for shutdown. Bounds how late a worker can notice a
/// missed wakeup — nothing blocks forever on the queue.
const WORKER_POLL: Duration = Duration::from_millis(25);

/// Domain separator folded into the machine seed to derive the
/// virtual-time steal stream (so steal order never aliases any machine
/// RNG stream).
const STEAL_SEED_TAG: u64 = 0x57EA_1F1E_E75E_ED00;

/// Which scheduler drives the shard fleet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedMode {
    /// Deterministic cost-model scheduling: session `i` arrives at
    /// `i * arrival_gap` model cycles; per-shard deques with
    /// seed-deterministic work stealing. Bit-reproducible.
    VirtualTime {
        /// Model cycles between successive arrivals (the offered load).
        arrival_gap: u64,
    },
    /// Real worker threads and wall-clock timing.
    Threaded,
}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of shards (machines) in the fleet.
    pub shards: usize,
    /// Scheduler backend.
    pub mode: SchedMode,
    /// Base machine configuration; shard `i` runs on
    /// [`MachineConfig::shard`]`(i)`.
    pub machine: MachineConfig,
    /// Admission bound: sessions allowed to wait. Beyond it, submission
    /// fails with [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// Per-session execution knobs (retries, budgets, recycling).
    pub run: SessionRunConfig,
    /// `Some(capacity)`: share one content-addressed verdict cache with
    /// this LRU bound across the whole fleet (behind a lock in thread
    /// mode; probed in deterministic submission order in virtual-time
    /// mode). `None` disables caching.
    pub verdict_cache: Option<usize>,
    /// Deterministic fault-injection plan. `None` (and
    /// [`FaultPlan::disabled`]) leave the serve path bit-identical to a
    /// build without the fault layer: directives are a pure function of
    /// the plan seed and the arrival index, never of machine state.
    pub faults: Option<FaultPlan>,
    /// `Some`: persist verdicts to a sealed on-disk store. At start the
    /// store is recovered and hydrated into the fleet verdict cache
    /// (enabling a default-capacity cache if `verdict_cache` is `None`),
    /// with hydration cost charged to virtual time; at runtime dirty
    /// verdicts flush write-behind in `flush_batch` batches; at drain
    /// the remainder flushes and the store optionally compacts. A store
    /// that fails to open degrades the service to memory-only operation
    /// with a typed event — never a panic.
    pub store: Option<StoreConfig>,
    /// `Some`: admission groups small sessions sharing an
    /// [`SessionRequest::admission_key`] into one batch that runs
    /// back-to-back on a single worker — the leader's inspection seeds
    /// the verdict cache and every follower replays it. Pair with
    /// `verdict_cache` (a batch without a cache still co-schedules but
    /// amortizes nothing). `None` admits every session individually.
    pub batch: Option<BatchPolicy>,
    /// Whether idle workers steal queued items from peers (including
    /// dead ones). On by default; benches disable it to measure what a
    /// skewed fleet loses without stealing.
    pub steal: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            mode: SchedMode::VirtualTime {
                arrival_gap: 2_000_000,
            },
            machine: MachineConfig::default(),
            queue_capacity: 8,
            run: SessionRunConfig::default(),
            verdict_cache: None,
            faults: None,
            store: None,
            batch: None,
            steal: true,
        }
    }
}

/// Everything the service hands back after [`ProvisioningService::drain`].
pub struct ServiceResult {
    /// Per-session reports. Virtual mode: submission order. Threaded
    /// mode: sorted by session name (completion order is racy).
    pub reports: Vec<SessionReport>,
    /// The service metrics (counters, percentiles, event log).
    pub metrics: Arc<ServeMetrics>,
    /// The shard fleet with its providers — virtual mode only (threaded
    /// shards live and die on their worker threads); empty otherwise.
    /// Tests use these to assert host-side state across tenants.
    pub shards: Vec<Shard>,
    /// Fleet makespan in model cycles: when the last shard went idle
    /// (virtual) or the busiest shard's total cycles (threaded).
    pub makespan_cycles: u64,
    /// Wall-clock time from service start to drain completion.
    pub wall_nanos: u64,
}

impl ServiceResult {
    /// Hex SHA-256 over every report's deterministic fields (name,
    /// cycles, latency, outcome class, signed verdict) plus the fleet
    /// makespan. Two runs with the same seeds — fault layer enabled or
    /// not — must produce the same fingerprint; the fault tests and
    /// benches assert exactly that.
    pub fn fingerprint(&self) -> String {
        let mut h = Sha256::new();
        for r in &self.reports {
            h.update(r.name.as_bytes());
            h.update(&r.cycles.to_be_bytes());
            h.update(&r.latency_cycles.to_be_bytes());
            h.update(&[match &r.outcome {
                SessionOutcome::Compliant => 0u8,
                SessionOutcome::NonCompliant => 1,
                SessionOutcome::Evicted { .. } => 2,
                SessionOutcome::Failed { .. } => 3,
                SessionOutcome::Shed => 4,
            }]);
            if let Some(v) = &r.verdict {
                h.update(&[u8::from(v.compliant)]);
                h.update(v.detail.as_bytes());
                h.update(&v.signature);
            }
        }
        h.update(&self.makespan_cycles.to_be_bytes());
        h.finalize().to_hex()
    }

    /// Hex SHA-256 over verdict *content* only — session name, outcome
    /// class, and the signed verdict's polarity and detail — with no
    /// cycle or latency fields. A warm-restarted fleet replaying
    /// hydrated verdicts must reproduce a cold run's value bit for bit
    /// even though its timing (probe cost instead of full inspection)
    /// differs; the warm-start tests and `bench_store_warmstart` assert
    /// exactly that.
    pub fn verdict_fingerprint(&self) -> String {
        let mut h = Sha256::new();
        for r in &self.reports {
            h.update(r.name.as_bytes());
            h.update(&[match &r.outcome {
                SessionOutcome::Compliant => 0u8,
                SessionOutcome::NonCompliant => 1,
                SessionOutcome::Evicted { .. } => 2,
                SessionOutcome::Failed { .. } => 3,
                SessionOutcome::Shed => 4,
            }]);
            if let Some(v) = &r.verdict {
                h.update(&[u8::from(v.compliant)]);
                h.update(v.detail.as_bytes());
            }
        }
        h.finalize().to_hex()
    }
}

/// The service's live persistence state.
struct StoreState {
    store: VerdictStore,
    cfg: StoreConfig,
    /// Store faults scheduled by the fault plan during this run; they
    /// damage bytes at rest, so they are applied (and their recovery
    /// proven) at drain, after the final flush.
    pending_faults: Vec<FaultDirective>,
}

/// The virtual-time backend: an incremental discrete-event simulation.
/// `submit` advances the event loop to the new arrival (running every
/// item the fleet could have started by then) before admission-checking
/// against what is *actually* still queued; `drain` advances to
/// completion.
struct VirtualState {
    shards: Vec<Shard>,
    /// Virtual instant each shard becomes free.
    free_at: Vec<u64>,
    /// Per-shard work deques.
    work: WorkDeques,
    arrival_gap: u64,
    /// Seed of the deterministic steal stream.
    steal_seed: u64,
    /// Monotonic steal counter: victim choice is
    /// [`faults::steal_victim`]`(steal_seed, steal_tick, candidates)`.
    steal_tick: u64,
    /// `(arrival_index, report)` — sorted back to submission order at
    /// drain (stealing completes sessions out of order).
    reports: Vec<(u64, SessionReport)>,
}

struct SharedQueue {
    /// Per-worker deques behind one lock: contention is irrelevant at
    /// fleet sizes of single-digit shards, and a single lock keeps the
    /// steal scan (find the deepest victim) atomic.
    work: Mutex<WorkDeques>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Workers still able to take jobs. Decremented by a drop guard on
    /// every exit path — including panics — so `submit` can detect a
    /// dead pool instead of queueing work nobody will run.
    live: AtomicUsize,
    /// Per-worker death flags, so a stealing peer can tell whether it
    /// is draining a dead worker's deque (the `drained_from_dead`
    /// metric) without touching the victim's thread.
    dead: Box<[AtomicBool]>,
}

/// Panic-safe liveness accounting for one worker thread.
struct WorkerGuard(Arc<SharedQueue>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::SeqCst);
    }
}

enum WorkerMsg {
    Report(Box<SessionReport>),
    Done { cycles: u64 },
}

struct ThreadedState {
    shared: Arc<SharedQueue>,
    workers: Vec<thread::JoinHandle<()>>,
    rx: mpsc::Receiver<WorkerMsg>,
}

enum Backend {
    Virtual(VirtualState),
    Threaded(ThreadedState),
}

/// The multi-tenant provisioning service.
pub struct ProvisioningService {
    cfg: ServiceConfig,
    metrics: Arc<ServeMetrics>,
    backend: Backend,
    verdict_cache: Option<SharedVerdictCache>,
    store: Option<StoreState>,
    submitted: u64,
    started: std::time::Instant,
    draining: bool,
}

impl ProvisioningService {
    /// Boots the fleet: `cfg.shards` machines with per-shard derived
    /// seeds, plus worker threads in threaded mode.
    pub fn start(cfg: ServiceConfig) -> Self {
        let metrics = Arc::new(ServeMetrics::new());
        let shards = cfg.shards.max(1);
        // One cache for the whole fleet: the point is cross-shard (and
        // cross-tenant) verdict sharing. A persistent store needs a
        // cache to hydrate into, so it enables a default-capacity one.
        let cache_capacity = cfg
            .verdict_cache
            .or_else(|| cfg.store.as_ref().map(|_| DEFAULT_STORE_CACHE_CAPACITY));
        let verdict_cache = cache_capacity.map(shared_cache);
        // Open (and recover) the store before any shard boots; a store
        // that cannot open degrades the service to memory-only with a
        // typed event rather than failing the whole fleet.
        let mut hydrate_cycles = 0u64;
        let store = cfg.store.as_ref().and_then(|sc| {
            let options = StoreOptions {
                segment_max_records: sc.segment_max_records.max(1),
                compact_live_per_mille: sc.compact_live_per_mille,
            };
            match VerdictStore::open(&sc.dir, &sc.seal_key, options) {
                Ok((store, recovery)) => {
                    metrics.mark_store_enabled();
                    metrics.record(
                        EventKind::StoreOpened,
                        "",
                        None,
                        &format!(
                            "recovered {} records ({} live); damage found: {}",
                            recovery.records_recovered,
                            store.len(),
                            recovery.found_damage()
                        ),
                    );
                    Some(StoreState {
                        store,
                        cfg: sc.clone(),
                        pending_faults: Vec::new(),
                    })
                }
                Err(e) => {
                    metrics.record(
                        EventKind::StoreDegraded,
                        "",
                        None,
                        &format!("store failed to open, running memory-only: {e}"),
                    );
                    None
                }
            }
        });
        if let (Some(state), Some(cache)) = (&store, &verdict_cache) {
            let mut cache = lock_cache(cache);
            // Track dirty inserts from here on so live verdicts can be
            // flushed write-behind; hydrated entries are already
            // durable and are not re-logged.
            cache.track_dirty();
            let n = state.store.hydrate_into(&mut cache) as u64;
            metrics.record_store_hydrated(n);
            // Warm start is not free: every hydrated record pays a
            // read + authenticate + decode charge on the virtual clock
            // before the first session can run.
            hydrate_cycles = n * STORE_HYDRATE_PER_RECORD;
        }
        let backend = match cfg.mode {
            SchedMode::VirtualTime { arrival_gap } => Backend::Virtual(VirtualState {
                shards: (0..shards)
                    .map(|i| Shard::new(i, &cfg.machine, verdict_cache.clone()))
                    .collect(),
                free_at: vec![hydrate_cycles; shards],
                work: WorkDeques::new(shards),
                arrival_gap,
                steal_seed: cfg.machine.seed ^ STEAL_SEED_TAG,
                steal_tick: 0,
                reports: Vec::new(),
            }),
            SchedMode::Threaded => {
                let shared = Arc::new(SharedQueue {
                    work: Mutex::new(WorkDeques::new(shards)),
                    available: Condvar::new(),
                    shutdown: AtomicBool::new(false),
                    live: AtomicUsize::new(shards),
                    dead: (0..shards).map(|_| AtomicBool::new(false)).collect(),
                });
                let (tx, rx) = mpsc::channel();
                let workers = (0..shards)
                    .map(|i| {
                        let shared = Arc::clone(&shared);
                        let tx = tx.clone();
                        let machine = cfg.machine.clone();
                        let cache = verdict_cache.clone();
                        let run_cfg = cfg.run.clone();
                        let metrics = Arc::clone(&metrics);
                        let steal = cfg.steal;
                        thread::spawn(move || {
                            worker_loop(i, machine, cache, shared, tx, run_cfg, metrics, steal)
                        })
                    })
                    .collect();
                Backend::Threaded(ThreadedState {
                    shared,
                    workers,
                    rx,
                })
            }
        };
        ProvisioningService {
            cfg,
            metrics,
            backend,
            verdict_cache,
            store,
            submitted: 0,
            started: std::time::Instant::now(),
            draining: false,
        }
    }

    /// The service metrics handle.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Shards/workers still able to run sessions. Virtual mode counts
    /// non-dead shards; threaded mode reads the pool's liveness counter
    /// (kept honest by per-thread drop guards).
    pub fn live_workers(&self) -> usize {
        match &self.backend {
            Backend::Virtual(v) => v.shards.iter().filter(|s| !s.is_dead()).count(),
            Backend::Threaded(t) => t.shared.live.load(Ordering::SeqCst),
        }
    }

    /// Submits one session.
    ///
    /// Virtual mode advances the event simulation to this arrival, then
    /// queues the session (or joins it to an open same-key batch);
    /// threaded mode enqueues it for the worker fleet.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] when admission control rejects the session,
    /// [`ServeError::ShuttingDown`] after drain has begun.
    pub fn submit(&mut self, req: SessionRequest) -> Result<(), ServeError> {
        if self.draining {
            return Err(ServeError::ShuttingDown);
        }
        let arrival_index = self.submitted;
        // The directive is a pure function of (plan seed, arrival
        // index): scheduling, machine state, and host timing cannot
        // perturb the fault schedule, so it replays bit-identically.
        let mut directive = self
            .cfg
            .faults
            .as_ref()
            .and_then(|plan| plan.directive_for(arrival_index));
        // Store faults damage bytes at rest, not this session's
        // transport: the session runs unfaulted, and the scheduled
        // damage is applied (and its recovery proven) at drain, after
        // the final flush. With no store attached there is nothing to
        // damage and the directive is a no-op.
        if let Some(d) = directive.filter(|d| d.kind.is_store()) {
            directive = None;
            if let Some(state) = &mut self.store {
                state.pending_faults.push(d);
            }
        }
        match &mut self.backend {
            Backend::Virtual(v) => {
                let arrival = arrival_index * v.arrival_gap;
                // Catch the simulation up to this instant first:
                // admission must see what is *actually* still queued at
                // the arrival, not what was queued at the last submit.
                advance_fleet(
                    v,
                    arrival,
                    &self.cfg,
                    &self.metrics,
                    &mut self.store,
                    &self.verdict_cache,
                );
                let waiting = v.work.queued_sessions();
                if waiting >= self.cfg.queue_capacity {
                    self.metrics.record(
                        EventKind::RejectedBusy,
                        &req.name,
                        None,
                        &format!("queue depth {waiting}"),
                    );
                    return Err(ServeError::Busy {
                        queue_depth: waiting,
                    });
                }
                // A fully dead fleet is a typed error, never a hang or
                // a panic. (A *partially* dead fleet still admits: live
                // peers steal from dead shards' deques.)
                if v.shards.iter().all(|s| s.is_dead()) {
                    self.metrics
                        .record(EventKind::Shed, &req.name, None, "no live shards");
                    return Err(ServeError::PoolDead);
                }
                self.metrics.observe_queue_depth(waiting + 1);
                self.metrics
                    .record(EventKind::Admitted, &req.name, None, "");
                self.submitted += 1;

                let batch_key = batchable_key(&req, self.cfg.batch.as_ref());
                let mut pending = Some(QueuedSession {
                    arrival_index,
                    arrival,
                    req,
                    directive,
                });
                if let (Some(key), Some(policy)) = (&batch_key, self.cfg.batch.as_ref()) {
                    if let Some(item) = v.work.find_joinable(key, policy) {
                        if let Some(qs) = pending.take() {
                            item.sessions.push(qs);
                            self.metrics.record_batch_join(item.sessions.len() as u64);
                        }
                    }
                }
                if let Some(qs) = pending {
                    // Home shard: the tenant's explicit hint, else the
                    // shard that could start it soonest (greedy — the
                    // pre-stealing scheduler's assignment rule).
                    let home = qs
                        .req
                        .shard_hint
                        .map(|h| h % v.shards.len())
                        .or_else(|| {
                            (0..v.shards.len())
                                .filter(|&i| !v.shards[i].is_dead())
                                .min_by_key(|&i| (v.free_at[i].max(arrival), i))
                        })
                        .unwrap_or(0);
                    v.work.push(WorkItem {
                        home,
                        batch_key,
                        sessions: vec![qs],
                    });
                    self.metrics.observe_deque_depth(v.work.depth(home) as u64);
                }
                // Let an idle worker start the new work at its arrival
                // instant (batched joins ride an already-queued item).
                advance_fleet(
                    v,
                    arrival,
                    &self.cfg,
                    &self.metrics,
                    &mut self.store,
                    &self.verdict_cache,
                );
                Ok(())
            }
            Backend::Threaded(t) => {
                if t.shared.live.load(Ordering::SeqCst) == 0 {
                    self.metrics
                        .record(EventKind::Shed, &req.name, None, "no live workers");
                    return Err(ServeError::PoolDead);
                }
                let mut work = lock_recover(&t.shared.work);
                if t.shared.shutdown.load(Ordering::SeqCst) {
                    return Err(ServeError::ShuttingDown);
                }
                let waiting = work.queued_sessions();
                if waiting >= self.cfg.queue_capacity {
                    drop(work);
                    self.metrics.record(
                        EventKind::RejectedBusy,
                        &req.name,
                        None,
                        &format!("queue depth {waiting}"),
                    );
                    return Err(ServeError::Busy {
                        queue_depth: waiting,
                    });
                }
                self.metrics
                    .record(EventKind::Admitted, &req.name, None, "");
                let batch_key = batchable_key(&req, self.cfg.batch.as_ref());
                let mut pending = Some(QueuedSession {
                    arrival_index,
                    arrival: 0,
                    req,
                    directive,
                });
                if let (Some(key), Some(policy)) = (&batch_key, self.cfg.batch.as_ref()) {
                    if let Some(item) = work.find_joinable(key, policy) {
                        if let Some(qs) = pending.take() {
                            item.sessions.push(qs);
                            self.metrics
                                .record_threaded_batch_join(item.sessions.len() as u64);
                        }
                    }
                }
                if let Some(qs) = pending {
                    let shards = self.cfg.shards.max(1);
                    let home = qs
                        .req
                        .shard_hint
                        .map_or(arrival_index as usize % shards, |h| h % shards);
                    work.push(WorkItem {
                        home,
                        batch_key,
                        sessions: vec![qs],
                    });
                    self.metrics.observe_deque_depth(work.depth(home) as u64);
                }
                self.metrics.observe_queue_depth(work.queued_sessions());
                self.submitted += 1;
                drop(work);
                // Wake the whole fleet: the home worker may be busy
                // while an idle peer could steal the new item.
                t.shared.available.notify_all();
                Ok(())
            }
        }
    }

    /// Graceful drain: stops admission, lets queued sessions finish,
    /// joins the workers, and returns every report plus the metrics.
    pub fn drain(mut self) -> ServiceResult {
        self.draining = true;
        self.metrics
            .record(EventKind::DrainStarted, "", None, "graceful drain");
        match self.backend {
            Backend::Virtual(mut v) => {
                // Run the simulation to completion: every queued item a
                // live worker can reach (own deque or steal) finishes.
                advance_fleet(
                    &mut v,
                    u64::MAX,
                    &self.cfg,
                    &self.metrics,
                    &mut self.store,
                    &self.verdict_cache,
                );
                // Whatever is still queued is unreachable — a fully
                // dead fleet, or dead-shard deques with stealing
                // disabled. Typed failure reports, not silence.
                for qs in v.work.drain_all() {
                    let error = ServeError::PoolDead.to_string();
                    self.metrics
                        .record(EventKind::Failed, &qs.req.name, None, &error);
                    v.reports
                        .push((qs.arrival_index, pool_dead_report(qs.req.name, error)));
                }
                // Final write-behind flush (plus optional compaction and
                // any scheduled at-rest fault injection + recovery
                // proof); the flush cost lands on the makespan.
                let store_cost =
                    finish_store(self.store.take(), &self.verdict_cache, &self.metrics);
                if let Some(cache) = &self.verdict_cache {
                    self.metrics.set_cache_stats(&lock_cache(cache).stats());
                }
                let makespan = v.free_at.iter().copied().max().unwrap_or(0) + store_cost;
                // Stealing finishes sessions out of submission order;
                // reports are handed back in it.
                v.reports.sort_by_key(|(i, _)| *i);
                ServiceResult {
                    reports: v.reports.into_iter().map(|(_, r)| r).collect(),
                    metrics: self.metrics,
                    shards: v.shards,
                    makespan_cycles: makespan,
                    wall_nanos: self.started.elapsed().as_nanos() as u64,
                }
            }
            Backend::Threaded(t) => {
                t.shared.shutdown.store(true, Ordering::SeqCst);
                t.shared.available.notify_all();
                for handle in t.workers {
                    let _ = handle.join();
                }
                // Workers have quiesced; the cache's counters are final
                // and every verdict is visible for the final flush.
                let _ = finish_store(self.store.take(), &self.verdict_cache, &self.metrics);
                if let Some(cache) = &self.verdict_cache {
                    self.metrics.set_cache_stats(&lock_cache(cache).stats());
                }
                let mut reports = Vec::new();
                let mut makespan = 0u64;
                while let Ok(msg) = t.rx.try_recv() {
                    match msg {
                        WorkerMsg::Report(r) => reports.push(*r),
                        WorkerMsg::Done { cycles, .. } => makespan = makespan.max(cycles),
                    }
                }
                // Sessions still queued after every worker exited were
                // admitted but never ran (the pool died under them).
                // They get typed failure reports, not silence.
                for qs in lock_recover(&t.shared.work).drain_all() {
                    let error = ServeError::PoolDead.to_string();
                    self.metrics
                        .record(EventKind::Failed, &qs.req.name, None, &error);
                    reports.push(pool_dead_report(qs.req.name, error));
                }
                reports.sort_by(|a, b| a.name.cmp(&b.name));
                ServiceResult {
                    reports,
                    metrics: self.metrics,
                    shards: Vec::new(),
                    makespan_cycles: makespan,
                    wall_nanos: self.started.elapsed().as_nanos() as u64,
                }
            }
        }
    }
}

/// The batch key for `req` under `policy` — `None` when batching is
/// off, the policy cannot hold two sessions, the binary is too large,
/// or the session stalls (a stalling client inside a batch would hold
/// its followers hostage on one worker).
fn batchable_key(req: &SessionRequest, policy: Option<&BatchPolicy>) -> Option<[u8; 32]> {
    let policy = policy?;
    if policy.max_sessions < 2 || req.stall_after.is_some() || req.binary.len() > policy.max_bytes {
        return None;
    }
    Some(req.admission_key())
}

/// A typed failure report for a session the pool died under.
fn pool_dead_report(name: String, error: String) -> SessionReport {
    SessionReport {
        name,
        shard: usize::MAX,
        outcome: SessionOutcome::Failed { error },
        stages: StageCycles::default(),
        cycles: 0,
        latency_cycles: 0,
        wall_nanos: 0,
        retries: 0,
        blocks_delivered: 0,
        enclave_key_fp: None,
        measurement: None,
        verdict: None,
        client_verified: false,
        instructions: 0,
        cache_hit: false,
    }
}

/// The virtual-time event loop: repeatedly give the earliest-free live
/// worker that can reach work (own deque, or any deque when stealing)
/// its next item, until the fleet's next start would pass `until` or no
/// reachable work remains.
///
/// Determinism: worker choice is a pure function of the (deterministic)
/// `free_at` vector; steal-victim choice is
/// [`faults::steal_victim`]`(seed, tick, candidates)` — a pure function
/// of the fleet seed and a monotonic counter. Nothing here reads host
/// state.
fn advance_fleet(
    v: &mut VirtualState,
    until: u64,
    cfg: &ServiceConfig,
    metrics: &Arc<ServeMetrics>,
    store: &mut Option<StoreState>,
    verdict_cache: &Option<SharedVerdictCache>,
) {
    loop {
        let n = v.shards.len();
        let worker = (0..n)
            .filter(|&i| !v.shards[i].is_dead())
            .filter(|&i| v.work.depth(i) > 0 || (cfg.steal && !v.work.victims(i).is_empty()))
            .min_by_key(|&i| (v.free_at[i], i));
        let Some(w) = worker else { break };
        if v.free_at[w] > until {
            break;
        }
        let item = match v.work.pop_own(w) {
            Some(item) => item,
            None => {
                let victims = v.work.victims(w);
                let pick = faults::steal_victim(v.steal_seed, v.steal_tick, victims.len());
                v.steal_tick += 1;
                let Some(&victim) = victims.get(pick) else {
                    break;
                };
                let Some(item) = v.work.steal_from(victim) else {
                    break;
                };
                metrics.record_steal(item.sessions.len() as u64, v.shards[victim].is_dead());
                item
            }
        };
        run_item(v, w, item, cfg, metrics, store, verdict_cache);
    }
}

/// Runs one work item (a session or a whole batch) on worker `w`,
/// advancing its virtual clock. If the worker dies mid-item, the
/// unstarted remainder is requeued at the front of its deque so live
/// peers steal and finish it.
fn run_item(
    v: &mut VirtualState,
    w: usize,
    item: WorkItem,
    cfg: &ServiceConfig,
    metrics: &Arc<ServeMetrics>,
    store: &mut Option<StoreState>,
    verdict_cache: &Option<SharedVerdictCache>,
) {
    let batch_key = item.batch_key;
    let mut pos = v.free_at[w];
    let mut remaining = item.sessions.into_iter();
    let mut requeue: Option<WorkItem> = None;
    while let Some(qs) = remaining.next() {
        if v.shards[w].is_dead() {
            // Steal-aware worker death: only the session that carried
            // the fault failed; the rest of the batch goes back to the
            // head of the dead shard's deque for peers to drain.
            requeue = Some(WorkItem {
                home: w,
                batch_key,
                sessions: std::iter::once(qs).chain(remaining).collect(),
            });
            break;
        }
        // A batch follower cannot start before it arrives: the leader
        // may still be running (overlap is fine — the follower joined
        // an in-flight batch), but its own start clamps to its arrival.
        let start = pos.max(qs.arrival);
        let before = v.shards[w].total_cycles();
        let mut report =
            v.shards[w].run_session_with_fault(&qs.req, &cfg.run, metrics, qs.directive.as_ref());
        let duration = v.shards[w].total_cycles() - before;
        let end = start + duration;
        pos = end;
        // Write-behind flush: once enough fresh verdicts have queued
        // up, seal them to the store and charge the flush to the shard
        // that just ran — deterministic virtual time, bounded dirty
        // queue.
        let mut store_died = false;
        if let (Some(state), Some(cache)) = (store.as_mut(), verdict_cache) {
            let depth = lock_cache(cache).dirty_len();
            metrics.observe_flush_queue_depth(depth as u64);
            if depth >= state.cfg.flush_batch.max(1) {
                let dirty = lock_cache(cache).take_dirty();
                let flushed = dirty.len() as u64;
                match state.store.append_batch(&dirty) {
                    Ok(()) => {
                        metrics.record_store_flushed(flushed);
                        pos += flushed * STORE_FLUSH_PER_RECORD;
                    }
                    Err(e) => {
                        // Persistence degrades; serving does not.
                        metrics.record(
                            EventKind::StoreDegraded,
                            &qs.req.name,
                            Some(w),
                            &format!("write-behind flush failed: {e}"),
                        );
                        store_died = true;
                    }
                }
            }
        }
        if store_died {
            *store = None;
        }
        report.latency_cycles = end - qs.arrival;
        metrics.record_timing(&report.stages, report.cycles, report.latency_cycles, 0);
        v.reports.push((qs.arrival_index, report));
    }
    v.free_at[w] = pos;
    if let Some(rest) = requeue {
        v.work.push_front(w, rest);
    }
}

/// Drain-time store finalization: flush the remaining dirty verdicts,
/// optionally compact, mirror the store counters into the metrics, then
/// apply any at-rest faults the plan scheduled during the run and prove
/// they recover (typed counters, longest authenticated prefix, never a
/// panic). Returns the model cycles the final flush cost, so virtual
/// mode can charge it to the makespan.
fn finish_store(
    state: Option<StoreState>,
    verdict_cache: &Option<SharedVerdictCache>,
    metrics: &ServeMetrics,
) -> u64 {
    let Some(state) = state else { return 0 };
    let StoreState {
        mut store,
        cfg,
        pending_faults,
    } = state;
    let mut cost = 0u64;
    if let Some(cache) = verdict_cache {
        let dirty = lock_cache(cache).take_dirty();
        if !dirty.is_empty() {
            let n = dirty.len() as u64;
            match store.append_batch(&dirty) {
                Ok(()) => {
                    metrics.record_store_flushed(n);
                    cost += n * STORE_FLUSH_PER_RECORD;
                }
                Err(e) => metrics.record(
                    EventKind::StoreDegraded,
                    "",
                    None,
                    &format!("drain flush failed: {e}"),
                ),
            }
        }
    }
    if cfg.compact_on_drain {
        if let Err(e) = store.compact() {
            metrics.record(
                EventKind::StoreDegraded,
                "",
                None,
                &format!("compaction failed: {e}"),
            );
        }
    }
    metrics.set_store_stats(&store.stats());
    if pending_faults.is_empty() {
        return cost;
    }
    // At-rest damage is injected against the closed files, the way a
    // crash or media fault lands between runs; a fresh recovery scan
    // then repairs the store in place and its typed findings are the
    // detection evidence.
    let dir = store.dir().to_path_buf();
    drop(store);
    let mut applied: Vec<(FaultKind, bool)> = Vec::new();
    for d in &pending_faults {
        let outcome = match d.kind {
            FaultKind::StoreTornWrite => chaos::torn_write(&dir, d.block as u64),
            FaultKind::StoreBitFlip => chaos::flip_bit(&dir, d.block as u64, d.bit as u8),
            FaultKind::StoreLostSegment => chaos::lose_segment(&dir, d.block as u64),
            _ => Ok(None),
        };
        match outcome {
            Ok(Some(o)) => {
                metrics.record_fault_injected(d.kind);
                metrics.record(
                    EventKind::FaultInjected,
                    "",
                    None,
                    &format!("{}: {}", d.kind.name(), o.detail),
                );
                applied.push((d.kind, o.detectable));
            }
            // Nothing on disk to damage yet (an empty store).
            Ok(None) => {}
            Err(e) => metrics.record(
                EventKind::StoreDegraded,
                "",
                None,
                &format!("chaos injection failed: {e}"),
            ),
        }
    }
    if applied.is_empty() {
        return cost;
    }
    let options = StoreOptions {
        segment_max_records: cfg.segment_max_records.max(1),
        compact_live_per_mille: cfg.compact_live_per_mille,
    };
    match VerdictStore::open(&dir, &cfg.seal_key, options) {
        Ok((reopened, report)) => {
            for (kind, detectable) in &applied {
                // An injection its own helper calls observable must
                // surface in the recovery report; silent ones (a lost
                // final segment) honestly stay undetected.
                if *detectable && report.found_damage() {
                    metrics.record_fault_detected(*kind);
                }
                // Recovery completed with typed counters and only
                // authenticated records — the clean-recovery outcome.
                metrics.record_fault_recovered(*kind);
            }
            metrics.set_store_stats(&reopened.stats());
            metrics.record(
                EventKind::StoreOpened,
                "",
                None,
                &format!(
                    "post-fault recovery: {} live records, damage found: {}",
                    reopened.len(),
                    report.found_damage()
                ),
            );
        }
        Err(e) => metrics.record(
            EventKind::StoreDegraded,
            "",
            None,
            &format!("post-fault recovery failed: {e}"),
        ),
    }
    cost
}

/// Threaded-mode worker: builds its shard (providers are not `Send`, so
/// each machine is born and dies on its own thread), then pulls items —
/// its own deque first, stealing from the deepest peer deque when idle —
/// until shutdown with no reachable work.
///
/// Wall-clock steal order is inherently racy, so the threaded victim
/// rule is load-based (deepest deque, ties to the lowest index) rather
/// than seeded; determinism claims live entirely in the virtual-time
/// backend.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    index: usize,
    machine: MachineConfig,
    verdict_cache: Option<SharedVerdictCache>,
    shared: Arc<SharedQueue>,
    tx: mpsc::Sender<WorkerMsg>,
    run_cfg: SessionRunConfig,
    metrics: Arc<ServeMetrics>,
    steal: bool,
) {
    let _guard = WorkerGuard(Arc::clone(&shared));
    let mut shard = Shard::new(index, &machine, verdict_cache);
    'outer: loop {
        let item = {
            let mut work = lock_recover(&shared.work);
            loop {
                if let Some(item) = work.pop_own(index) {
                    break Some(item);
                }
                if steal {
                    let victim = work
                        .victims(index)
                        .into_iter()
                        .max_by_key(|&i| (work.depth(i), std::cmp::Reverse(i)));
                    if let Some(victim) = victim {
                        if let Some(item) = work.steal_from(victim) {
                            let from_dead = shared.dead[victim].load(Ordering::SeqCst);
                            metrics.record_threaded_steal(item.sessions.len() as u64, from_dead);
                            break Some(item);
                        }
                    }
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // Bounded wait: a missed notification (or a peer that
                // died holding the lock) costs at most one poll
                // interval, never a hung worker.
                let (guard, _) = shared
                    .available
                    .wait_timeout(work, WORKER_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
                work = guard;
            }
        };
        let Some(item) = item else {
            break;
        };
        let batch_key = item.batch_key;
        let mut remaining = item.sessions.into_iter();
        while let Some(qs) = remaining.next() {
            let report =
                shard.run_session_with_fault(&qs.req, &run_cfg, &metrics, qs.directive.as_ref());
            metrics.record_timing(
                &report.stages,
                report.cycles,
                report.latency_cycles,
                report.wall_nanos,
            );
            let died = shard.is_dead();
            if tx.send(WorkerMsg::Report(Box::new(report))).is_err() {
                break 'outer;
            }
            if died {
                // The injected death takes effect after the report
                // ships: the session's typed failure is visible, then
                // the rest of the batch goes back to this worker's
                // deque — peers steal from dead deques, so nothing
                // queued is lost — and the liveness guard announces
                // the death.
                shared.dead[index].store(true, Ordering::SeqCst);
                let rest: Vec<QueuedSession> = remaining.collect();
                if !rest.is_empty() {
                    lock_recover(&shared.work).push_front(
                        index,
                        WorkItem {
                            home: index,
                            batch_key,
                            sessions: rest,
                        },
                    );
                }
                shared.available.notify_all();
                break 'outer;
            }
        }
    }
    let _ = tx.send(WorkerMsg::Done {
        cycles: shard.total_cycles(),
    });
}
