//! Deterministic fault injection for the provisioning service.
//!
//! EnGarde's value is that two mutually-distrusting parties can rely on
//! the inspector's verdict even when the other side misbehaves — so the
//! service must be proven against exactly the host↔enclave interaction
//! faults a hostile or broken transport can produce: corrupted,
//! truncated, dropped, reordered, or duplicated sealed blocks, flipped
//! manifest bytes, a mismatched channel key, a client that dies
//! mid-stream, EPC-pressure spikes, and worker death.
//!
//! The layer is *deterministic*: a [`FaultPlan`] is a pure function of
//! `(seed, arrival_index)`, so a chaos run is bit-reproducible in
//! virtual time — the same seed replays the identical fault schedule,
//! and a plan whose mix injects nothing is behaviorally identical to no
//! plan at all (pinned by `tests/fault_matrix.rs`).
//!
//! The invariant the handling side maintains everywhere: **every
//! injected fault produces a typed error or a clean rejection — never a
//! panic, never a hang, and never a signed PASS verdict**. Sealed-block
//! tampering is caught by the channel (MAC failure or sequence
//! mismatch) before any plaintext reaches the inspector; drops and
//! stalls are evicted; pressure spikes are retried with exponential
//! backoff and deterministic jitter; dead workers are detected instead
//! of waited on.

use engarde_crypto::channel::SealedBlock;
use engarde_rand::{splitmix64, Rng, RngCore, SeedableRng, StdRng};

/// Number of fault kinds — the size of every per-kind counter array.
pub const FAULT_KIND_COUNT: usize = 13;

/// Every fault the layer can inject.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Flip one ciphertext bit of a sealed block (MAC failure).
    CorruptBlock,
    /// Truncate a sealed block's ciphertext (MAC failure).
    TruncateBlock,
    /// Drop one mid-stream block (channel sequence mismatch).
    DropBlock,
    /// Swap two adjacent blocks (channel sequence mismatch).
    ReorderBlocks,
    /// Deliver one block twice (channel sequence mismatch on the copy).
    DuplicateBlock,
    /// Flip a bit of the sealed manifest block (MAC failure on the
    /// manifest — no field ever deserializes from tampered bytes).
    FlipManifest,
    /// Tamper the wrapped channel key (decrypt-key mismatch: RSA unwrap
    /// fails or every subsequent MAC does).
    KeyMismatch,
    /// The client goes silent mid-stream (eviction).
    ClientStall,
    /// A transient resource spike on the deliver path: EPC page
    /// exhaustion or in-enclave working-memory exhaustion (retried).
    EpcPressure,
    /// The worker running the session dies (detected, never hung on).
    /// Steal-aware: the dead worker's deque is *not* lost — peers drain
    /// it through the work-stealing path ([`steal_victim`] keeps dead
    /// shards in the victim set), so sessions queued behind the death
    /// complete elsewhere instead of vanishing.
    WorkerDeath,
    /// A crash tears the persistent verdict store's active segment
    /// mid-record (recovery truncates to the authenticated prefix).
    StoreTornWrite,
    /// Silent media corruption flips one bit inside a sealed store
    /// record (authentication fails; the record is discarded, typed).
    StoreBitFlip,
    /// A whole store segment file disappears (recovery counts the index
    /// gap and serves the surviving authenticated records).
    StoreLostSegment,
}

impl FaultKind {
    /// Every kind, in counter-index order.
    pub const ALL: [FaultKind; FAULT_KIND_COUNT] = [
        FaultKind::CorruptBlock,
        FaultKind::TruncateBlock,
        FaultKind::DropBlock,
        FaultKind::ReorderBlocks,
        FaultKind::DuplicateBlock,
        FaultKind::FlipManifest,
        FaultKind::KeyMismatch,
        FaultKind::ClientStall,
        FaultKind::EpcPressure,
        FaultKind::WorkerDeath,
        FaultKind::StoreTornWrite,
        FaultKind::StoreBitFlip,
        FaultKind::StoreLostSegment,
    ];

    /// The kind's index into per-kind counter arrays.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|k| *k == self)
            .unwrap_or_default()
    }

    /// The snake_case name used in metrics JSON and event details.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CorruptBlock => "corrupt_block",
            FaultKind::TruncateBlock => "truncate_block",
            FaultKind::DropBlock => "drop_block",
            FaultKind::ReorderBlocks => "reorder_blocks",
            FaultKind::DuplicateBlock => "duplicate_block",
            FaultKind::FlipManifest => "flip_manifest",
            FaultKind::KeyMismatch => "key_mismatch",
            FaultKind::ClientStall => "client_stall",
            FaultKind::EpcPressure => "epc_pressure",
            FaultKind::WorkerDeath => "worker_death",
            FaultKind::StoreTornWrite => "store_torn_write",
            FaultKind::StoreBitFlip => "store_bit_flip",
            FaultKind::StoreLostSegment => "store_lost_segment",
        }
    }

    /// Whether this fault targets the persistent verdict store rather
    /// than a session's transport. Store faults damage bytes at rest:
    /// they never touch the session that was scheduled alongside them,
    /// and their detection happens in the store's recovery scan, not in
    /// the channel layer.
    pub fn is_store(self) -> bool {
        matches!(
            self,
            FaultKind::StoreTornWrite | FaultKind::StoreBitFlip | FaultKind::StoreLostSegment
        )
    }

    /// Whether a clean re-attempt can recover from this fault: the
    /// tampering hits only one attempt's transport, so a retry with
    /// freshly sealed blocks succeeds. Stalls evict and worker death
    /// kills the shard — neither is recoverable by retrying. Store
    /// faults damage data at rest: no retry un-tears a segment, so the
    /// recoverable (transient) mix excludes them too.
    pub fn is_recoverable(self) -> bool {
        !matches!(self, FaultKind::ClientStall | FaultKind::WorkerDeath) && !self.is_store()
    }
}

/// Per-kind injection rates in parts-per-thousand of submitted
/// sessions. The sum is the overall fault rate (clamped to 1000).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultMix {
    /// `per_mille[FaultKind::index()]` = that kind's injection rate.
    pub per_mille: [u16; FAULT_KIND_COUNT],
}

impl FaultMix {
    /// No faults at all — a run with this mix must be bit-identical to
    /// a run with no fault layer.
    pub fn none() -> Self {
        FaultMix::default()
    }

    /// Only `kind`, at `per_mille` parts-per-thousand (1000 = every
    /// session).
    pub fn only(kind: FaultKind, per_mille: u16) -> Self {
        let mut mix = FaultMix::default();
        mix.per_mille[kind.index()] = per_mille.min(1000);
        mix
    }

    /// The default *transient* mix: every recoverable transport fault
    /// at equal weight, `total_per_mille` overall. This is the
    /// `bench_fault_recovery` default — every injection is retryable,
    /// so the recovery-rate floor applies to all of it.
    pub fn transient(total_per_mille: u16) -> Self {
        let kinds: Vec<FaultKind> = FaultKind::ALL
            .into_iter()
            .filter(|k| k.is_recoverable())
            .collect();
        let each = (total_per_mille.min(1000) as usize / kinds.len()) as u16;
        let mut mix = FaultMix::default();
        for k in kinds {
            mix.per_mille[k.index()] = each;
        }
        mix
    }

    /// Full chaos: every kind (stalls and worker death included) at
    /// equal weight, `total_per_mille` overall.
    pub fn chaos(total_per_mille: u16) -> Self {
        let each = total_per_mille.min(1000) / FAULT_KIND_COUNT as u16;
        let mut mix = FaultMix::default();
        for k in FaultKind::ALL {
            mix.per_mille[k.index()] = each;
        }
        mix
    }

    /// Sum of all per-kind rates (the overall injection probability in
    /// parts-per-thousand, capped at 1000 when sampling).
    pub fn total_per_mille(&self) -> u32 {
        self.per_mille.iter().map(|&w| w as u32).sum()
    }
}

/// A deterministic fault schedule: which sessions get which faults is a
/// pure function of `(seed, arrival_index)` — independent of retries,
/// shard assignment, or wall-clock, so every chaos run replays
/// bit-identically.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Root seed of the fault schedule (independent of machine seeds —
    /// the machines' RNG streams are untouched by the fault layer).
    pub seed: u64,
    /// Per-kind injection rates.
    pub mix: FaultMix,
}

impl FaultPlan {
    /// A plan injecting nothing — used to prove the layer itself is
    /// free of observable overhead.
    pub fn disabled(seed: u64) -> Self {
        FaultPlan {
            seed,
            mix: FaultMix::none(),
        }
    }

    /// The fault (if any) scheduled for the session admitted at
    /// `arrival_index`. Pure: same `(seed, mix, arrival_index)` — same
    /// answer, always.
    pub fn directive_for(&self, arrival_index: u64) -> Option<FaultDirective> {
        let mut state = self.seed ^ 0x000F_A017_5EEDu64.wrapping_mul(arrival_index.wrapping_add(1));
        let mut rng = StdRng::seed_from_u64(splitmix64(&mut state));
        let roll = rng.gen_range(0u32..1000);
        let mut cumulative = 0u32;
        for kind in FaultKind::ALL {
            cumulative += self.mix.per_mille[kind.index()] as u32;
            if roll < cumulative.min(1000) {
                return Some(FaultDirective {
                    kind,
                    block: rng.next_u64() as usize,
                    bit: rng.next_u64() as usize,
                    pressure: 1 + (rng.next_u64() % 2) as u32,
                });
            }
        }
        None
    }
}

/// One scheduled fault, with enough deterministic entropy to pick a
/// target block, bit, and spike magnitude. `block` and `bit` are raw
/// draws; appliers reduce them modulo the live target's size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultDirective {
    /// What to inject.
    pub kind: FaultKind,
    /// Raw draw selecting the target block.
    pub block: usize,
    /// Raw draw selecting the target bit (and spike flavor).
    pub bit: usize,
    /// Spike magnitude for [`FaultKind::EpcPressure`] (1–2 injected
    /// failures, always within a retry budget of ≥ 3).
    pub pressure: u32,
}

/// Flips ciphertext bit `bit` (reduced mod the block's size) of
/// `block`. Returns false for an empty ciphertext.
fn flip_bit(block: &mut SealedBlock, bit: usize) -> bool {
    if block.ciphertext.is_empty() {
        return false;
    }
    let b = bit % (block.ciphertext.len() * 8);
    block.ciphertext[b / 8] ^= 1 << (b % 8);
    true
}

/// Applies a block-level fault to a sealed transfer in flight. Returns
/// whether anything was actually mutated (a drop/reorder needs at least
/// two blocks; in practice a transfer is always manifest + ≥ 1 page).
///
/// Every mutation here is *detected before plaintext is trusted*: bit
/// flips and truncations fail the HMAC, drops/reorders/duplicates fail
/// the channel's strict sequence check. None of them can reach the
/// inspector, so none can influence a verdict.
pub fn apply_to_blocks(blocks: &mut Vec<SealedBlock>, d: &FaultDirective) -> bool {
    let len = blocks.len();
    match d.kind {
        FaultKind::CorruptBlock => {
            if len == 0 {
                return false;
            }
            let idx = d.block % len;
            flip_bit(&mut blocks[idx], d.bit)
        }
        FaultKind::TruncateBlock => {
            if len == 0 {
                return false;
            }
            let idx = d.block % len;
            let cut = blocks[idx].ciphertext.len() / 2;
            blocks[idx].ciphertext.truncate(cut);
            true
        }
        FaultKind::DropBlock => {
            // Never the last block: a dropped tail is a stall, not a
            // drop — mid-stream drops surface as sequence mismatches.
            if len < 2 {
                return false;
            }
            let idx = d.block % (len - 1);
            blocks.remove(idx);
            true
        }
        FaultKind::ReorderBlocks => {
            if len < 2 {
                return false;
            }
            let idx = d.block % (len - 1);
            blocks.swap(idx, idx + 1);
            true
        }
        FaultKind::DuplicateBlock => {
            if len == 0 {
                return false;
            }
            let idx = d.block % len;
            let copy = blocks[idx].clone();
            blocks.insert(idx + 1, copy);
            true
        }
        FaultKind::FlipManifest => match blocks.first_mut() {
            Some(manifest) => flip_bit(manifest, d.bit),
            None => false,
        },
        _ => false,
    }
}

/// Tampers a wrapped channel key in transit (the decrypt-key-mismatch
/// fault): one flipped bit means the enclave unwraps a different — or
/// no — AES key, so establishment or the first MAC check fails typed.
pub fn tamper_wrapped_key(wrapped: &mut [u8], d: &FaultDirective) {
    if wrapped.is_empty() {
        return;
    }
    let b = d.bit % (wrapped.len() * 8);
    wrapped[b / 8] ^= 1 << (b % 8);
}

/// Where the client stall lands: after `1 + block mod (len-1)` sealed
/// blocks — always at least one short of completion, so the service
/// must evict. `None` when the transfer is too short to stall inside.
pub fn stall_point(d: &FaultDirective, blocks: usize) -> Option<usize> {
    if blocks < 2 {
        return None;
    }
    Some(1 + d.block % (blocks - 1))
}

/// Deterministic victim selection for the virtual-time work-stealing
/// scheduler: which candidate deque an idle worker steals from is a
/// pure function of `(seed, tick)` — the fleet seed and a monotonic
/// steal counter — never of machine state or host timing, so a stolen
/// schedule replays bit-identically. `candidates` is the number of
/// non-empty victim deques (dead workers' deques included: their queued
/// sessions must be drained by peers, not lost); the return value is an
/// index into that candidate list. Zero candidates returns 0 (callers
/// never steal from an empty set).
pub fn steal_victim(seed: u64, tick: u64, candidates: usize) -> usize {
    if candidates == 0 {
        return 0;
    }
    let mut state = seed ^ 0x57EA_15EED_u64.wrapping_mul(tick.wrapping_add(1));
    (splitmix64(&mut state) % candidates as u64) as usize
}

/// Deterministic exponential backoff with jitter, in model cycles:
/// `base · 2^(attempt-1) + jitter`, where the jitter stream derives
/// from `seed` via SplitMix64 (bit-reproducible, yet decorrelated
/// across sessions so synchronized retries do not stampede a shard).
pub fn backoff_cycles(base: u64, attempt: u32, seed: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    let shift = attempt.saturating_sub(1).min(8);
    let mut state = seed ^ 0xBAC0_FF5E_u64.wrapping_add(attempt as u64);
    let jitter = splitmix64(&mut state) % base;
    (base << shift).saturating_add(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(seq: u64, len: usize) -> SealedBlock {
        SealedBlock {
            sequence: seq,
            ciphertext: vec![0xAB; len],
            tag: [0u8; 32],
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_index() {
        let plan = FaultPlan {
            seed: 42,
            mix: FaultMix::chaos(500),
        };
        for i in 0..256 {
            assert_eq!(plan.directive_for(i), plan.directive_for(i), "index {i}");
        }
        let replay = FaultPlan {
            seed: 42,
            mix: FaultMix::chaos(500),
        };
        assert_eq!(plan.directive_for(7), replay.directive_for(7));
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let a = FaultPlan {
            seed: 1,
            mix: FaultMix::chaos(1000),
        };
        let b = FaultPlan {
            seed: 2,
            mix: FaultMix::chaos(1000),
        };
        let differs = (0..64).any(|i| a.directive_for(i) != b.directive_for(i));
        assert!(differs, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn empty_mix_never_injects() {
        let plan = FaultPlan::disabled(99);
        assert!((0..512).all(|i| plan.directive_for(i).is_none()));
    }

    #[test]
    fn full_rate_single_kind_always_injects_that_kind() {
        let plan = FaultPlan {
            seed: 3,
            mix: FaultMix::only(FaultKind::EpcPressure, 1000),
        };
        for i in 0..64 {
            let d = plan.directive_for(i).expect("rate 1000 must inject");
            assert_eq!(d.kind, FaultKind::EpcPressure);
            assert!((1..=2).contains(&d.pressure));
        }
    }

    #[test]
    fn injection_rate_tracks_the_mix() {
        let plan = FaultPlan {
            seed: 11,
            mix: FaultMix::transient(400),
        };
        let n = 2_000;
        let injected = (0..n).filter(|&i| plan.directive_for(i).is_some()).count();
        let rate = injected as f64 / n as f64;
        let want = plan.mix.total_per_mille() as f64 / 1000.0;
        assert!(
            (rate - want).abs() < 0.05,
            "rate {rate:.3} too far from {want:.3}"
        );
    }

    #[test]
    fn transient_mix_is_entirely_recoverable() {
        let mix = FaultMix::transient(800);
        for kind in FaultKind::ALL {
            if !kind.is_recoverable() {
                assert_eq!(mix.per_mille[kind.index()], 0, "{}", kind.name());
            }
        }
        assert!(mix.total_per_mille() > 0);
    }

    #[test]
    fn store_kinds_are_at_rest_and_unrecoverable() {
        for kind in [
            FaultKind::StoreTornWrite,
            FaultKind::StoreBitFlip,
            FaultKind::StoreLostSegment,
        ] {
            assert!(kind.is_store(), "{}", kind.name());
            assert!(!kind.is_recoverable(), "{}", kind.name());
        }
        let at_rest = FaultKind::ALL.iter().filter(|k| k.is_store()).count();
        assert_eq!(at_rest, 3, "exactly the three store kinds target rest");
    }

    #[test]
    fn block_faults_mutate_the_transfer() {
        let d = |kind| FaultDirective {
            kind,
            block: 1,
            bit: 9,
            pressure: 1,
        };
        let fresh = || vec![sealed(0, 64), sealed(1, 64), sealed(2, 64)];

        let mut b = fresh();
        assert!(apply_to_blocks(&mut b, &d(FaultKind::CorruptBlock)));
        assert_ne!(b[1].ciphertext, fresh()[1].ciphertext);

        let mut b = fresh();
        assert!(apply_to_blocks(&mut b, &d(FaultKind::TruncateBlock)));
        assert_eq!(b[1].ciphertext.len(), 32);

        let mut b = fresh();
        assert!(apply_to_blocks(&mut b, &d(FaultKind::DropBlock)));
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].sequence, 2, "mid-stream drop leaves a gap");

        let mut b = fresh();
        assert!(apply_to_blocks(&mut b, &d(FaultKind::ReorderBlocks)));
        assert_eq!(
            b.iter().map(|x| x.sequence).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );

        let mut b = fresh();
        assert!(apply_to_blocks(&mut b, &d(FaultKind::DuplicateBlock)));
        assert_eq!(b.len(), 4);
        assert_eq!(b[1].sequence, b[2].sequence);

        let mut b = fresh();
        assert!(apply_to_blocks(&mut b, &d(FaultKind::FlipManifest)));
        assert_ne!(b[0].ciphertext, fresh()[0].ciphertext);
    }

    #[test]
    fn drop_never_removes_the_final_block() {
        for raw in 0..32 {
            let mut b = vec![sealed(0, 8), sealed(1, 8), sealed(2, 8)];
            let d = FaultDirective {
                kind: FaultKind::DropBlock,
                block: raw,
                bit: 0,
                pressure: 1,
            };
            assert!(apply_to_blocks(&mut b, &d));
            assert_eq!(b.last().map(|x| x.sequence), Some(2));
        }
    }

    #[test]
    fn stall_point_is_always_short_of_completion() {
        for raw in 0..64 {
            let d = FaultDirective {
                kind: FaultKind::ClientStall,
                block: raw,
                bit: 0,
                pressure: 1,
            };
            let p = stall_point(&d, 5).expect("5 blocks can stall");
            assert!((1..5).contains(&p), "stall at {p} of 5");
        }
        assert_eq!(
            stall_point(
                &FaultDirective {
                    kind: FaultKind::ClientStall,
                    block: 0,
                    bit: 0,
                    pressure: 1
                },
                1
            ),
            None
        );
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let base = 1_000u64;
        let b1 = backoff_cycles(base, 1, 7);
        let b2 = backoff_cycles(base, 2, 7);
        let b3 = backoff_cycles(base, 3, 7);
        assert!((base..2 * base).contains(&b1));
        assert!((2 * base..3 * base).contains(&b2));
        assert!((4 * base..5 * base).contains(&b3));
        // Deterministic per (seed, attempt); decorrelated across seeds.
        assert_eq!(b2, backoff_cycles(base, 2, 7));
        assert_ne!(backoff_cycles(base, 2, 7), backoff_cycles(base, 2, 8));
        assert_eq!(backoff_cycles(0, 5, 7), 0, "zero base disables backoff");
    }

    #[test]
    fn steal_victim_is_a_pure_function_of_seed_and_tick() {
        for tick in 0..256u64 {
            let a = steal_victim(0xA5A5, tick, 7);
            let b = steal_victim(0xA5A5, tick, 7);
            assert_eq!(a, b, "tick {tick}");
            assert!(a < 7);
        }
        // Distinct seeds decorrelate the victim sequence.
        let seq = |seed: u64| {
            (0..64)
                .map(|t| steal_victim(seed, t, 5))
                .collect::<Vec<_>>()
        };
        assert_ne!(seq(1), seq(2));
        // Ticks actually vary the pick (not a constant function).
        let picks: std::collections::BTreeSet<_> = (0..64).map(|t| steal_victim(9, t, 4)).collect();
        assert!(picks.len() > 1, "steal_victim never varied: {picks:?}");
        assert_eq!(steal_victim(1, 1, 0), 0, "empty candidate set");
        assert_eq!(steal_victim(1, 1, 1), 0, "single candidate");
    }

    #[test]
    fn kind_indices_are_a_bijection() {
        for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let names: std::collections::BTreeSet<_> =
            FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FAULT_KIND_COUNT);
    }
}
