//! The session state machine: one tenant's provisioning protocol as a
//! typed FSM over the [`CloudProvider`] calls.
//!
//! The raw provider API will happily accept calls in any order and
//! answer with stringly-typed protocol errors; a busy service cannot
//! afford those footguns. [`SessionFsm`] pins the legal order —
//!
//! ```text
//! Created → Attested → ChannelOpen → Delivering → Complete → Inspected
//! ```
//!
//! — and turns every illegal transition (deliver before the channel
//! opens, inspect before the transfer completes, double-inspect) into
//! [`ServeError::IllegalTransition`] *before* any provider state is
//! touched. The FSM drives a real [`Client`] internally, so attestation
//! verification, channel establishment, and verdict verification all
//! run the genuine mutually-distrusting protocol.

use crate::error::ServeError;
use crate::faults::{self, FaultDirective};
use engarde_core::client::Client;
use engarde_core::policy::PolicyModule;
use engarde_core::protocol::SignedVerdict;
use engarde_core::provider::{CloudProvider, ProviderView};
use engarde_core::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde_crypto::channel::SealedBlock;
use engarde_crypto::rsa::RsaPublicKey;
use engarde_crypto::sha256::Sha256;
use engarde_sgx::machine::EnclaveId;
use std::sync::Arc;

/// Builds the session's agreed policy modules. Shared across threads so
/// one request can be queued anywhere in the fleet; each shard
/// constructs its own module instances.
pub type PolicyFactory = Arc<dyn Fn() -> Vec<Box<dyn PolicyModule>> + Send + Sync>;

/// Everything a tenant submits to the service.
#[derive(Clone)]
pub struct SessionRequest {
    /// Session name (unique per submission; appears in reports/events).
    pub name: String,
    /// The client's ELF image.
    pub binary: Vec<u8>,
    /// The agreed bootstrap spec (must match the factory's modules).
    pub spec: BootstrapSpec,
    /// Builds the agreed policy modules.
    pub policies: PolicyFactory,
    /// Seed for the tenant's client-side randomness.
    pub client_seed: u64,
    /// `Some(n)`: simulate a client that dies after `n` sealed blocks.
    pub stall_after: Option<usize>,
    /// `Some(i)`: pin this session's *home* deque to shard `i mod
    /// shards` instead of letting the scheduler pick the
    /// earliest-available shard. Work stealing may still run it
    /// elsewhere; the hint only shapes where it queues (benches use it
    /// to construct skewed fleets).
    pub shard_hint: Option<usize>,
}

impl SessionRequest {
    /// The admission-time batch key: SHA-256 over a domain tag, the
    /// length-prefixed bootstrap bytes, and the client binary. Two
    /// requests with the same key provision identical enclave content
    /// under the same spec, so one inspection's verdict serves both via
    /// the content-addressed cache — which is exactly what batch
    /// admission exploits. (The verdict cache's own key hashes the
    /// *reassembled* content; this one is computable before any
    /// delivery happens, from the request alone.)
    pub fn admission_key(&self) -> [u8; 32] {
        let bootstrap = self.spec.to_bootstrap_bytes();
        let mut h = Sha256::new();
        h.update(b"ENGARDE-BATCH-ADMISSION-V1");
        h.update(&(bootstrap.len() as u64).to_be_bytes());
        h.update(&bootstrap);
        h.update(&(self.binary.len() as u64).to_be_bytes());
        h.update(&self.binary);
        h.finalize().0
    }
}

impl std::fmt::Debug for SessionRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SessionRequest({}, {} bytes)",
            self.name,
            self.binary.len()
        )
    }
}

/// The phases of one provisioning session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionPhase {
    /// Enclave created, not yet attested.
    Created,
    /// Quote verified by the client.
    Attested,
    /// Encrypted channel established.
    ChannelOpen,
    /// At least one content block delivered, transfer incomplete.
    Delivering,
    /// Manifest and every declared page received.
    Complete,
    /// Verdict produced; the session is finished.
    Inspected,
}

impl SessionPhase {
    /// The phase name used in typed transition errors.
    pub fn name(self) -> &'static str {
        match self {
            SessionPhase::Created => "created",
            SessionPhase::Attested => "attested",
            SessionPhase::ChannelOpen => "channel-open",
            SessionPhase::Delivering => "delivering",
            SessionPhase::Complete => "content-complete",
            SessionPhase::Inspected => "inspected",
        }
    }
}

/// The result of a completed inspection, as the session observed it.
#[derive(Clone, Debug)]
pub struct SessionVerdict {
    /// The provider's view (verdict + exec pages + stage cycles).
    pub view: ProviderView,
    /// The enclave-signed verdict.
    pub verdict: SignedVerdict,
    /// Whether the *client* accepted the verdict (signature from the
    /// attested key, digest matches the content it sent).
    pub client_verified: bool,
}

/// One tenant session bound to a shard's [`CloudProvider`].
pub struct SessionFsm {
    name: String,
    enclave: EnclaveId,
    client: Client,
    enclave_key: Option<RsaPublicKey>,
    phase: SessionPhase,
    blocks_delivered: usize,
}

impl std::fmt::Debug for SessionFsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SessionFsm({}, enclave={}, phase={})",
            self.name,
            self.enclave,
            self.phase.name()
        )
    }
}

impl SessionFsm {
    /// Creates the EnGarde enclave for `req` on `provider` and enters
    /// the `Created` phase.
    ///
    /// # Errors
    ///
    /// Propagates enclave-creation failures (including EPC pressure,
    /// which the service layer may retry).
    pub fn create(provider: &mut CloudProvider, req: &SessionRequest) -> Result<Self, ServeError> {
        let enclave = provider.create_engarde_enclave(req.spec.clone(), (req.policies)())?;
        let client = Client::new(
            req.binary.clone(),
            &req.spec,
            DEFAULT_ENCLAVE_BASE,
            provider.device_public_key(),
            req.client_seed,
        );
        Ok(SessionFsm {
            name: req.name.clone(),
            enclave,
            client,
            enclave_key: None,
            phase: SessionPhase::Created,
            blocks_delivered: 0,
        })
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclave this session provisions.
    pub fn enclave(&self) -> EnclaveId {
        self.enclave
    }

    /// The current phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// The attested enclave public key (after [`SessionFsm::attest`]).
    pub fn enclave_key(&self) -> Option<&RsaPublicKey> {
        self.enclave_key.as_ref()
    }

    /// SHA-256 fingerprint of the attested enclave key — the channel
    /// identity tests compare across tenants for leakage.
    pub fn enclave_key_fingerprint(&self) -> Option<[u8; 32]> {
        self.enclave_key.as_ref().map(|k| {
            let mut h = Sha256::new();
            h.update(&k.modulus_be());
            h.update(&k.exponent_be());
            *h.finalize().as_bytes()
        })
    }

    fn require(&self, want: &[SessionPhase], action: &'static str) -> Result<(), ServeError> {
        if want.contains(&self.phase) {
            Ok(())
        } else {
            Err(ServeError::IllegalTransition {
                phase: self.phase.name(),
                action,
            })
        }
    }

    /// Runs the attestation round trip: fresh client nonce, provider
    /// quote, client-side verification against the expected measurement
    /// and the key bound into the quote.
    ///
    /// # Errors
    ///
    /// [`ServeError::IllegalTransition`] outside `Created`; attestation
    /// failures otherwise.
    pub fn attest(&mut self, provider: &mut CloudProvider) -> Result<(), ServeError> {
        self.require(&[SessionPhase::Created], "attest")?;
        let nonce = self.client.challenge();
        let quote = provider.attest(self.enclave, nonce)?;
        let key = provider.enclave_public_key(self.enclave)?;
        self.client.verify_quote(&quote, &key)?;
        self.enclave_key = Some(key);
        self.phase = SessionPhase::Attested;
        Ok(())
    }

    /// Establishes the encrypted channel (client wraps a fresh AES key
    /// under the attested enclave key).
    ///
    /// # Errors
    ///
    /// [`ServeError::IllegalTransition`] outside `Attested`.
    pub fn open_channel(&mut self, provider: &mut CloudProvider) -> Result<(), ServeError> {
        self.open_channel_with(provider, None)
    }

    /// [`SessionFsm::open_channel`], with an optional fault directive
    /// that tampers the wrapped key in transit (the decrypt-key-
    /// mismatch fault: the enclave unwraps a different — or no — key,
    /// so establishment or the first MAC check fails with a typed
    /// error; tampering can never go unnoticed).
    ///
    /// # Errors
    ///
    /// [`ServeError::IllegalTransition`] outside `Attested`; typed
    /// channel failures otherwise.
    pub fn open_channel_with(
        &mut self,
        provider: &mut CloudProvider,
        tamper: Option<&FaultDirective>,
    ) -> Result<(), ServeError> {
        self.require(&[SessionPhase::Attested], "open channel")?;
        let key = self
            .enclave_key
            .clone()
            .ok_or(ServeError::MissingSessionKey { phase: "attested" })?;
        let mut wrapped = self.client.establish_channel(&key)?;
        if let Some(d) = tamper {
            faults::tamper_wrapped_key(&mut wrapped, d);
        }
        provider.open_channel(self.enclave, &wrapped)?;
        self.phase = SessionPhase::ChannelOpen;
        Ok(())
    }

    /// Seals the client's content into transfer blocks (manifest first).
    ///
    /// # Errors
    ///
    /// [`ServeError::IllegalTransition`] before the channel opens.
    pub fn content_blocks(&mut self) -> Result<Vec<SealedBlock>, ServeError> {
        self.require(
            &[SessionPhase::ChannelOpen, SessionPhase::Delivering],
            "seal content",
        )?;
        Ok(self.client.content_blocks()?)
    }

    /// Delivers one sealed block, advancing to `Complete` once the
    /// provider holds the manifest and every declared page.
    ///
    /// # Errors
    ///
    /// [`ServeError::IllegalTransition`] before the channel opens or
    /// after completion; typed duplicate/out-of-range page errors and
    /// channel failures from the provider.
    pub fn deliver(
        &mut self,
        provider: &mut CloudProvider,
        block: &SealedBlock,
    ) -> Result<SessionPhase, ServeError> {
        self.require(
            &[SessionPhase::ChannelOpen, SessionPhase::Delivering],
            "deliver content",
        )?;
        provider.deliver(self.enclave, block)?;
        self.blocks_delivered += 1;
        self.phase = if provider.content_complete(self.enclave)? {
            SessionPhase::Complete
        } else {
            SessionPhase::Delivering
        };
        Ok(self.phase)
    }

    /// Number of blocks delivered so far.
    pub fn blocks_delivered(&self) -> usize {
        self.blocks_delivered
    }

    /// Runs the inspection, finalizes the enclave on compliance, and
    /// verifies the signed verdict client-side.
    ///
    /// # Errors
    ///
    /// [`ServeError::IllegalTransition`] unless the transfer is complete
    /// — double-inspection lands here too, since the first inspection
    /// moves the phase to `Inspected`.
    pub fn inspect(&mut self, provider: &mut CloudProvider) -> Result<SessionVerdict, ServeError> {
        self.require(&[SessionPhase::Complete], "inspect")?;
        let view = provider.inspect_and_provision(self.enclave)?;
        let verdict = provider
            .signed_verdict(self.enclave)
            .ok_or(ServeError::WorkerLost)?
            .clone();
        let key = self
            .enclave_key
            .clone()
            .ok_or(ServeError::MissingSessionKey {
                phase: "content-complete",
            })?;
        let client_verified = match self.client.verify_verdict(&verdict, &key) {
            Ok(agreed) => agreed == view.compliant,
            Err(_) => false,
        };
        self.phase = SessionPhase::Inspected;
        Ok(SessionVerdict {
            view,
            verdict,
            client_verified,
        })
    }

    /// Aborts the session: closes it on the provider and tears the
    /// enclave down, releasing EPC pages. Valid in every phase — this
    /// is the eviction path.
    ///
    /// # Errors
    ///
    /// Propagates teardown failures for unknown enclaves.
    pub fn abort(self, provider: &mut CloudProvider) -> Result<usize, ServeError> {
        Ok(provider.close_session(self.enclave)?)
    }
}
