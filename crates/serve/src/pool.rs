//! Shard workers: each shard owns one [`SgxMachine`]-backed
//! [`CloudProvider`] and runs sessions to completion with eviction,
//! retry-with-budget, and EPC recycling.
//!
//! A shard is the unit of parallelism: providers are not `Send`-shared —
//! every shard's machine lives on exactly one worker (threaded mode) or
//! is driven round-robin by the virtual-time scheduler. Either way the
//! per-session logic is identical and lives in [`Shard::run_session`].
//!
//! [`SgxMachine`]: engarde_sgx::machine::SgxMachine

use crate::error::{is_retryable, EvictReason, ServeError};
use crate::faults::{self, FaultDirective, FaultKind};
use crate::metrics::{EventKind, ServeMetrics};
use crate::session::{SessionFsm, SessionPhase, SessionRequest};
use engarde_core::cache::SharedVerdictCache;
use engarde_core::protocol::SignedVerdict;
use engarde_core::provider::CloudProvider;
use engarde_core::provision::StageCycles;
use engarde_crypto::sha256::Digest;
use engarde_sgx::machine::{EnclaveId, MachineConfig};
use std::collections::VecDeque;

/// How one session ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SessionOutcome {
    /// Inspection passed; the enclave was finalized.
    Compliant,
    /// Inspection produced a signed rejection verdict.
    NonCompliant,
    /// The service evicted the session mid-protocol.
    Evicted {
        /// Why.
        reason: EvictReason,
    },
    /// A terminal failure (after retries, if the error was retryable).
    Failed {
        /// The rendered error.
        error: String,
    },
    /// The shard's circuit breaker was open; the session was shed
    /// without touching the machine.
    Shed,
}

/// Everything the service records about one finished session.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The session's name.
    pub name: String,
    /// Shard that ran it.
    pub shard: usize,
    /// How it ended.
    pub outcome: SessionOutcome,
    /// Per-stage inspection costs (zero unless a verdict was reached).
    pub stages: StageCycles,
    /// Model cycles this session consumed on its shard's machine.
    pub cycles: u64,
    /// End-to-end latency in model cycles (duration + queueing delay;
    /// the scheduler fills the queueing component in).
    pub latency_cycles: u64,
    /// Wall-clock time spent running the session.
    pub wall_nanos: u64,
    /// Transient retries performed.
    pub retries: u32,
    /// Sealed blocks the provider accepted.
    pub blocks_delivered: usize,
    /// SHA-256 fingerprint of the session's attested enclave key.
    pub enclave_key_fp: Option<[u8; 32]>,
    /// The enclave's measurement at attestation time.
    pub measurement: Option<Digest>,
    /// The enclave-signed verdict, when one was produced.
    pub verdict: Option<SignedVerdict>,
    /// Whether the tenant's client accepted the verdict signature.
    pub client_verified: bool,
    /// Instructions inspected.
    pub instructions: usize,
    /// Whether the verdict was replayed from the shared verdict cache.
    pub cache_hit: bool,
}

impl SessionReport {
    /// Whether the session reached a verdict (either polarity).
    pub fn reached_verdict(&self) -> bool {
        matches!(
            self.outcome,
            SessionOutcome::Compliant | SessionOutcome::NonCompliant
        )
    }
}

/// Per-session execution knobs, shared by both scheduler backends.
#[derive(Clone, Debug)]
pub struct SessionRunConfig {
    /// Additional attempts allowed after a transient failure.
    pub retry_budget: u32,
    /// Model-cycle budget for the delivery phase; exceeding it evicts
    /// the session (`DeliverBudgetExceeded`).
    pub deliver_cycle_budget: Option<u64>,
    /// Destroy compliant enclaves after inspection (recycling EPC). When
    /// false, compliant enclaves are retained — the long-running-tenant
    /// model — until pressure reclaims them.
    pub release_enclaves: bool,
    /// Under transient EPC pressure, reclaim the oldest retained enclave
    /// before retrying.
    pub reclaim_on_pressure: bool,
    /// Base of the exponential retry backoff, in model cycles; attempt
    /// `n` waits `base · 2^(n-1)` plus deterministic jitter derived
    /// from the session's client seed. `0` disables backoff (retries
    /// are immediate — the pre-fault-layer behavior).
    pub backoff_base_cycles: u64,
    /// End-to-end model-cycle budget for the whole session (attempts
    /// plus backoff); exceeding it between attempts evicts the session
    /// (`SessionBudgetExceeded`). `None` disables the budget.
    pub session_cycle_budget: Option<u64>,
    /// Consecutive terminal failures that open the shard's circuit
    /// breaker; while open, sessions are shed with a typed outcome
    /// instead of run. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long (model cycles of the shard's own clock) an opened
    /// breaker sheds before letting a half-open probe through.
    pub breaker_cooldown_cycles: u64,
}

impl Default for SessionRunConfig {
    fn default() -> Self {
        SessionRunConfig {
            retry_budget: 2,
            deliver_cycle_budget: None,
            release_enclaves: true,
            reclaim_on_pressure: true,
            backoff_base_cycles: 0,
            session_cycle_budget: None,
            breaker_threshold: 0,
            breaker_cooldown_cycles: 0,
        }
    }
}

impl SessionRunConfig {
    /// The chaos-hardened profile used by fault benches and tests:
    /// three retries with exponential backoff + jitter, a generous
    /// session budget, and a 4-strike breaker with a cooldown.
    pub fn chaos_hardened() -> Self {
        SessionRunConfig {
            retry_budget: 3,
            backoff_base_cycles: 50_000,
            session_cycle_budget: Some(2_000_000_000),
            breaker_threshold: 4,
            breaker_cooldown_cycles: 20_000_000,
            ..SessionRunConfig::default()
        }
    }
}

/// Admission-time batching policy. Small sessions whose
/// [`SessionRequest::admission_key`] matches an item already queued
/// join that item instead of queueing alone; the whole batch then runs
/// back-to-back on one worker, so the leader's full inspection seeds
/// the verdict cache and every follower replays it for `CACHE_PROBE` +
/// receive/decrypt — one inspection amortized across the batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BatchPolicy {
    /// Largest number of sessions one batch may hold (≥ 2 to batch at
    /// all; 1 degenerates to unbatched admission).
    pub max_sessions: usize,
    /// Sessions with binaries larger than this never join a batch — a
    /// huge image holding a queue slot hostage defeats the point of
    /// amortizing small sessions.
    pub max_bytes: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_sessions: 8,
            max_bytes: 1 << 20,
        }
    }
}

/// One admitted session waiting in a deque.
pub(crate) struct QueuedSession {
    /// Submission order (reports are re-sorted by it at drain).
    pub arrival_index: u64,
    /// Virtual arrival instant (always 0 in threaded mode, where the
    /// wall clock is authoritative).
    pub arrival: u64,
    /// The request itself.
    pub req: SessionRequest,
    /// The fault scheduled for this arrival, if any.
    pub directive: Option<FaultDirective>,
}

/// The unit of scheduling: one session, or a batch of same-key
/// sessions that must run back-to-back on whichever worker takes the
/// item. Stealing moves whole items, so a batch is never split across
/// machines (splitting would forfeit the shared-cache amortization the
/// batch exists for).
pub(crate) struct WorkItem {
    /// Shard whose deque this item was admitted to.
    pub home: usize,
    /// The shared admission key, for joinable batches; `None` for
    /// sessions excluded from batching (stalls, oversized binaries, or
    /// batching disabled).
    pub batch_key: Option<[u8; 32]>,
    /// The sessions, in join order — the first is the batch leader.
    pub sessions: Vec<QueuedSession>,
}

impl WorkItem {
    /// Whether `key` may join this queued item under `policy`.
    pub fn can_join(&self, key: &[u8; 32], policy: &BatchPolicy) -> bool {
        self.batch_key.as_ref() == Some(key) && self.sessions.len() < policy.max_sessions
    }
}

/// The per-shard work deques both scheduler backends share: shard `i`
/// owns `deques[i]`, pushes admitted items to its back, and pops its
/// own work from the front (FIFO for fairness); an idle worker steals
/// a whole item from the *front* of a victim's deque (the oldest,
/// most-overdue work moves first). Dead shards keep their deques —
/// stealing is how their queued sessions survive a worker death.
pub(crate) struct WorkDeques {
    deques: Vec<VecDeque<WorkItem>>,
    queued_sessions: usize,
}

impl WorkDeques {
    pub fn new(shards: usize) -> Self {
        WorkDeques {
            deques: (0..shards).map(|_| VecDeque::new()).collect(),
            queued_sessions: 0,
        }
    }

    /// Sessions admitted but not yet started (the admission-control
    /// queue depth).
    pub fn queued_sessions(&self) -> usize {
        self.queued_sessions
    }

    /// Queued items in shard `i`'s deque.
    pub fn depth(&self, i: usize) -> usize {
        self.deques[i].len()
    }

    /// Pushes a fresh item to the back of its home deque.
    pub fn push(&mut self, item: WorkItem) {
        self.queued_sessions += item.sessions.len();
        self.deques[item.home].push_back(item);
    }

    /// Requeues an interrupted item at the *front* of shard `i`'s deque
    /// (it was already dequeued once; its remaining sessions go back to
    /// the head so peers draining the dead shard see them first).
    pub fn push_front(&mut self, i: usize, item: WorkItem) {
        self.queued_sessions += item.sessions.len();
        self.deques[i].push_front(item);
    }

    /// Pops shard `i`'s own next item (front: oldest first).
    pub fn pop_own(&mut self, i: usize) -> Option<WorkItem> {
        let item = self.deques[i].pop_front()?;
        self.queued_sessions -= item.sessions.len();
        Some(item)
    }

    /// Steals the *oldest* item from the front of shard `victim`'s
    /// deque. Thieves take the FIFO end: the oldest item has the
    /// earliest arrival, so a steal never leaves an overdue session
    /// waiting while the thief idles on an arrival clamp — stealing the
    /// newest item instead measurably loses throughput to exactly those
    /// gaps.
    pub fn steal_from(&mut self, victim: usize) -> Option<WorkItem> {
        let item = self.deques[victim].pop_front()?;
        self.queued_sessions -= item.sessions.len();
        Some(item)
    }

    /// Shards with work available to steal, ascending. Dead shards are
    /// deliberately *not* filtered here: their deques must drain.
    pub fn victims(&self, excluding: usize) -> Vec<usize> {
        (0..self.deques.len())
            .filter(|&i| i != excluding && !self.deques[i].is_empty())
            .collect()
    }

    /// Finds a queued item `key` may join under `policy`, scanning
    /// deques in shard order and each deque back-to-front (newest
    /// first — an older batch is closer to running and joining it
    /// would race its start in threaded mode). Returns a mutable
    /// handle so the caller can append the joining session.
    pub fn find_joinable(&mut self, key: &[u8; 32], policy: &BatchPolicy) -> Option<&mut WorkItem> {
        // Two passes to appease the borrow checker: locate, then borrow.
        let mut found = None;
        'outer: for (d, deque) in self.deques.iter().enumerate() {
            for (j, item) in deque.iter().enumerate().rev() {
                if item.can_join(key, policy) {
                    found = Some((d, j));
                    break 'outer;
                }
            }
        }
        let (d, j) = found?;
        self.queued_sessions += 1;
        self.deques[d].get_mut(j)
    }

    /// Drains every remaining session out of every deque (a fully dead
    /// fleet at drain time): the sessions that will get typed
    /// `PoolDead` failure reports instead of silently vanishing.
    pub fn drain_all(&mut self) -> Vec<QueuedSession> {
        self.queued_sessions = 0;
        self.deques
            .iter_mut()
            .flat_map(|d| d.drain(..))
            .flat_map(|item| item.sessions)
            .collect()
    }
}

/// One shard: a provider on its own SGX machine plus the enclaves it has
/// retained for long-running tenants.
pub struct Shard {
    index: usize,
    provider: CloudProvider,
    retained: VecDeque<EnclaveId>,
    dead: bool,
    breaker_failures: u32,
    breaker_open_until: Option<u64>,
    breaker_tripped: bool,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shard({}, {} retained)", self.index, self.retained.len())
    }
}

/// What one protocol attempt produced (before outcome bookkeeping).
struct AttemptOutput {
    compliant: bool,
    stages: StageCycles,
    instructions: usize,
    blocks_delivered: usize,
    enclave_key_fp: Option<[u8; 32]>,
    measurement: Option<Digest>,
    verdict: Option<SignedVerdict>,
    client_verified: bool,
    cache_hit: bool,
    taint: Option<engarde_core::analysis::TaintStats>,
}

impl Shard {
    /// Boots shard `index` on a machine derived from `base` via
    /// [`MachineConfig::shard`] — distinct device keys and RNG streams
    /// per shard, deterministically. When `verdict_cache` is given, the
    /// shard's provider probes (and feeds) it on every inspection; the
    /// same handle attached to every shard is what shares verdicts
    /// across the fleet.
    pub fn new(
        index: usize,
        base: &MachineConfig,
        verdict_cache: Option<SharedVerdictCache>,
    ) -> Self {
        let mut provider = CloudProvider::new(base.shard(index));
        if let Some(cache) = verdict_cache {
            provider.set_verdict_cache(cache);
        }
        Shard {
            index,
            provider,
            retained: VecDeque::new(),
            dead: false,
            breaker_failures: 0,
            breaker_open_until: None,
            breaker_tripped: false,
        }
    }

    /// Whether this shard's worker has died (a `WorkerDeath` fault or a
    /// panicked thread). A dead shard runs no further sessions; the
    /// scheduler must route around it.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether the shard's circuit breaker is currently shedding load.
    pub fn breaker_open(&self) -> bool {
        self.breaker_open_until
            .is_some_and(|until| self.total_cycles() < until)
    }

    /// The shard's index in the fleet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's provider (assertions and host-state inspection).
    pub fn provider(&self) -> &CloudProvider {
        &self.provider
    }

    /// Enclaves retained for long-running tenants.
    pub fn retained_enclaves(&self) -> usize {
        self.retained.len()
    }

    /// Model cycles consumed on this shard's machine so far.
    pub fn total_cycles(&self) -> u64 {
        self.provider.host().machine().counter().total_cycles()
    }

    /// Destroys the oldest retained enclave, returning the EPC pages it
    /// freed. `None` when nothing is retained.
    pub fn reclaim_oldest(&mut self) -> Option<usize> {
        let id = self.retained.pop_front()?;
        self.provider.close_session(id).ok()
    }

    /// Runs one session start to finish: create, attest, channel,
    /// delivery (with stall/budget eviction), inspection, and teardown
    /// or retention — retrying transient EPC-pressure failures within
    /// `cfg.retry_budget`.
    pub fn run_session(
        &mut self,
        req: &SessionRequest,
        cfg: &SessionRunConfig,
        metrics: &ServeMetrics,
    ) -> SessionReport {
        self.run_session_with_fault(req, cfg, metrics, None)
    }

    /// [`Shard::run_session`] with an optional injected fault. The
    /// directive applies to the *first* attempt only: retries re-seal
    /// the content from the client seed, so transport faults are
    /// recoverable by design, while resource faults (EPC pressure)
    /// persist on the provider until their spike drains.
    ///
    /// Every fault's lifecycle is mirrored into `metrics`:
    /// injected → detected (first typed error) → retried per extra
    /// attempt → recovered (verdict reached) or evicted (terminal
    /// typed rejection). No path panics and no path signs a verdict
    /// over tampered content — tampering dies in the channel layer.
    pub fn run_session_with_fault(
        &mut self,
        req: &SessionRequest,
        cfg: &SessionRunConfig,
        metrics: &ServeMetrics,
        directive: Option<&FaultDirective>,
    ) -> SessionReport {
        let wall_start = std::time::Instant::now();
        let start_cycles = self.total_cycles();

        if cfg.breaker_threshold > 0 {
            if let Some(until) = self.breaker_open_until {
                if self.total_cycles() < until {
                    metrics.record(
                        EventKind::Shed,
                        &req.name,
                        Some(self.index),
                        "circuit breaker open",
                    );
                    if let Some(d) = directive {
                        // The fault was assigned but never ran; the
                        // breaker absorbed it.
                        metrics.record_fault_injected(d.kind);
                        metrics.record_fault_evicted(d.kind);
                    }
                    return self.bare_report(req, SessionOutcome::Shed, 0, wall_start, 0);
                }
                // Cooldown elapsed: half-open, this session probes.
                self.breaker_open_until = None;
            }
        }

        metrics.record(EventKind::Started, &req.name, Some(self.index), "");

        if let Some(d) = directive {
            metrics.record_fault_injected(d.kind);
            metrics.record(
                EventKind::FaultInjected,
                &req.name,
                Some(self.index),
                d.kind.name(),
            );
            if d.kind == FaultKind::WorkerDeath {
                // The worker running this session dies. The shard is
                // marked dead so schedulers route around it instead of
                // waiting on a thread that will never answer.
                self.dead = true;
                metrics.record_fault_detected(d.kind);
                metrics.record_fault_evicted(d.kind);
                metrics.record(
                    EventKind::WorkerDied,
                    &req.name,
                    Some(self.index),
                    "injected worker death",
                );
                let rendered = ServeError::WorkerLost.to_string();
                metrics.record(EventKind::Failed, &req.name, Some(self.index), &rendered);
                let cycles = self.total_cycles() - start_cycles;
                return self.bare_report(
                    req,
                    SessionOutcome::Failed { error: rendered },
                    cycles,
                    wall_start,
                    0,
                );
            }
        }

        let mut retries = 0u32;
        let mut fault_detected = false;
        let result = loop {
            let dir = if retries == 0 { directive } else { None };
            match self.attempt(req, cfg, dir) {
                Ok(out) => break Ok(out),
                Err(e) if is_retryable(&e) && retries < cfg.retry_budget => {
                    if let Some(d) = directive {
                        if !fault_detected {
                            fault_detected = true;
                            metrics.record_fault_detected(d.kind);
                        }
                        metrics.record_fault_retried(d.kind);
                    }
                    retries += 1;
                    if cfg.backoff_base_cycles > 0 {
                        let wait = faults::backoff_cycles(
                            cfg.backoff_base_cycles,
                            retries,
                            req.client_seed ^ self.index as u64,
                        );
                        self.provider
                            .host_mut()
                            .machine_mut()
                            .counter_mut()
                            .charge_native(wait);
                    }
                    if let Some(budget) = cfg.session_cycle_budget {
                        if self.total_cycles() - start_cycles > budget {
                            break Err((
                                ServeError::Evicted {
                                    reason: EvictReason::SessionBudgetExceeded,
                                },
                                retries,
                            ));
                        }
                    }
                    let reclaimed = if cfg.reclaim_on_pressure {
                        self.reclaim_oldest()
                    } else {
                        None
                    };
                    metrics.record(
                        EventKind::Retried,
                        &req.name,
                        Some(self.index),
                        &match reclaimed {
                            Some(pages) => format!("{e}; reclaimed {pages} EPC pages"),
                            None => format!("{e}"),
                        },
                    );
                }
                Err(e) => {
                    if let Some(d) = directive {
                        if !fault_detected {
                            metrics.record_fault_detected(d.kind);
                        }
                    }
                    break Err((e, retries));
                }
            }
        };

        if let Some(d) = directive {
            match &result {
                Ok(_) => metrics.record_fault_recovered(d.kind),
                Err(_) => metrics.record_fault_evicted(d.kind),
            }
        }
        if cfg.breaker_threshold > 0 {
            match &result {
                Ok(_) => {
                    if self.breaker_tripped {
                        metrics.record(
                            EventKind::BreakerClosed,
                            &req.name,
                            Some(self.index),
                            "clean probe closed the breaker",
                        );
                        self.breaker_tripped = false;
                    }
                    self.breaker_failures = 0;
                }
                Err(_) => {
                    self.breaker_failures += 1;
                    if self.breaker_failures >= cfg.breaker_threshold || self.breaker_tripped {
                        self.breaker_open_until =
                            Some(self.total_cycles() + cfg.breaker_cooldown_cycles);
                        self.breaker_tripped = true;
                        metrics.record(
                            EventKind::BreakerOpened,
                            &req.name,
                            Some(self.index),
                            &format!("{} consecutive failures", self.breaker_failures),
                        );
                        self.breaker_failures = 0;
                    }
                }
            }
        }

        let cycles = self.total_cycles() - start_cycles;
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;
        match result {
            Ok(out) => {
                let outcome = if out.compliant {
                    SessionOutcome::Compliant
                } else {
                    SessionOutcome::NonCompliant
                };
                metrics.record_verdict(out.compliant);
                if let Some(taint) = &out.taint {
                    metrics.record_taint(taint);
                }
                if out.cache_hit {
                    metrics.record(
                        EventKind::CacheHit,
                        &req.name,
                        Some(self.index),
                        "verdict replayed from cache",
                    );
                }
                metrics.record(
                    EventKind::Completed,
                    &req.name,
                    Some(self.index),
                    if out.compliant {
                        "compliant"
                    } else {
                        "noncompliant"
                    },
                );
                SessionReport {
                    name: req.name.clone(),
                    shard: self.index,
                    outcome,
                    stages: out.stages,
                    cycles,
                    latency_cycles: cycles,
                    wall_nanos,
                    retries,
                    blocks_delivered: out.blocks_delivered,
                    enclave_key_fp: out.enclave_key_fp,
                    measurement: out.measurement,
                    verdict: out.verdict,
                    client_verified: out.client_verified,
                    instructions: out.instructions,
                    cache_hit: out.cache_hit,
                }
            }
            Err((e, retries)) => {
                let outcome = match e {
                    ServeError::Evicted { reason } => {
                        metrics.record(
                            EventKind::Evicted,
                            &req.name,
                            Some(self.index),
                            &reason.to_string(),
                        );
                        SessionOutcome::Evicted { reason }
                    }
                    other => {
                        let rendered = if retries > 0 {
                            ServeError::RetriesExhausted {
                                attempts: retries + 1,
                                last: other.to_string(),
                            }
                            .to_string()
                        } else {
                            other.to_string()
                        };
                        metrics.record(EventKind::Failed, &req.name, Some(self.index), &rendered);
                        SessionOutcome::Failed { error: rendered }
                    }
                };
                SessionReport {
                    name: req.name.clone(),
                    shard: self.index,
                    outcome,
                    stages: StageCycles::default(),
                    cycles,
                    latency_cycles: cycles,
                    wall_nanos,
                    retries,
                    blocks_delivered: 0,
                    enclave_key_fp: None,
                    measurement: None,
                    verdict: None,
                    client_verified: false,
                    instructions: 0,
                    cache_hit: false,
                }
            }
        }
    }

    /// A verdict-less report for sessions that never ran the protocol
    /// (shed by the breaker, or lost to a worker death).
    fn bare_report(
        &self,
        req: &SessionRequest,
        outcome: SessionOutcome,
        cycles: u64,
        wall_start: std::time::Instant,
        retries: u32,
    ) -> SessionReport {
        SessionReport {
            name: req.name.clone(),
            shard: self.index,
            outcome,
            stages: StageCycles::default(),
            cycles,
            latency_cycles: cycles,
            wall_nanos: wall_start.elapsed().as_nanos() as u64,
            retries,
            blocks_delivered: 0,
            enclave_key_fp: None,
            measurement: None,
            verdict: None,
            client_verified: false,
            instructions: 0,
            cache_hit: false,
        }
    }

    /// One protocol attempt. Any mid-protocol failure tears the enclave
    /// down before returning so EPC pages are never leaked.
    fn attempt(
        &mut self,
        req: &SessionRequest,
        cfg: &SessionRunConfig,
        directive: Option<&FaultDirective>,
    ) -> Result<AttemptOutput, ServeError> {
        let mut fsm = SessionFsm::create(&mut self.provider, req)?;
        match self.drive(&mut fsm, req, cfg, directive) {
            Ok(out) => {
                // Rejected content never keeps an enclave; compliant
                // enclaves are recycled or retained per config.
                if !out.compliant || cfg.release_enclaves {
                    let _ = fsm.abort(&mut self.provider);
                } else {
                    self.retained.push_back(fsm.enclave());
                }
                Ok(out)
            }
            Err(e) => {
                let _ = fsm.abort(&mut self.provider);
                Err(e)
            }
        }
    }

    /// The protocol body, separated so `attempt` can guarantee teardown.
    /// An injected fault lands at its protocol-accurate point: key
    /// tampering at channel establishment, block tampering on the
    /// sealed transfer, pressure spikes on the provider before
    /// delivery, stalls as a truncated send.
    fn drive(
        &mut self,
        fsm: &mut SessionFsm,
        req: &SessionRequest,
        cfg: &SessionRunConfig,
        directive: Option<&FaultDirective>,
    ) -> Result<AttemptOutput, ServeError> {
        fsm.attest(&mut self.provider)?;
        let key_tamper = directive.filter(|d| d.kind == FaultKind::KeyMismatch);
        fsm.open_channel_with(&mut self.provider, key_tamper)?;

        let mut blocks = fsm.content_blocks()?;
        let mut stall_after = req.stall_after;
        if let Some(d) = directive {
            match d.kind {
                FaultKind::CorruptBlock
                | FaultKind::TruncateBlock
                | FaultKind::DropBlock
                | FaultKind::ReorderBlocks
                | FaultKind::DuplicateBlock
                | FaultKind::FlipManifest => {
                    faults::apply_to_blocks(&mut blocks, d);
                }
                FaultKind::ClientStall => {
                    if let Some(p) = faults::stall_point(d, blocks.len()) {
                        stall_after = Some(stall_after.map_or(p, |s| s.min(p)));
                    }
                }
                FaultKind::EpcPressure => {
                    // Even parity spikes the host EPC allocator (felt at
                    // the next deliver); odd parity spikes the enclave's
                    // working memory (felt inside receive).
                    if d.bit % 2 == 0 {
                        self.provider.inject_epc_pressure(d.pressure);
                    } else {
                        self.provider
                            .inject_working_memory_pressure(fsm.enclave(), d.pressure)?;
                    }
                }
                // Key tampering landed at channel establishment above;
                // worker death never reaches `drive`; store faults
                // damage bytes at rest, not this session's transport.
                FaultKind::KeyMismatch
                | FaultKind::WorkerDeath
                | FaultKind::StoreTornWrite
                | FaultKind::StoreBitFlip
                | FaultKind::StoreLostSegment => {}
            }
        }
        let deliver_start = self.total_cycles();
        let take = stall_after.map_or(blocks.len(), |n| n.min(blocks.len()));
        for block in blocks.iter().take(take) {
            fsm.deliver(&mut self.provider, block)?;
            if let Some(budget) = cfg.deliver_cycle_budget {
                if self.total_cycles() - deliver_start > budget {
                    return Err(ServeError::Evicted {
                        reason: EvictReason::DeliverBudgetExceeded,
                    });
                }
            }
        }
        if fsm.phase() != SessionPhase::Complete {
            // The client went silent before the manifest was satisfied.
            return Err(ServeError::Evicted {
                reason: EvictReason::ClientStalled,
            });
        }

        let measurement = self.provider.measurement(fsm.enclave());
        let verdict = fsm.inspect(&mut self.provider)?;
        Ok(AttemptOutput {
            compliant: verdict.view.compliant,
            stages: verdict.view.stages,
            instructions: verdict.view.instructions,
            blocks_delivered: fsm.blocks_delivered(),
            enclave_key_fp: fsm.enclave_key_fingerprint(),
            measurement,
            verdict: Some(verdict.verdict),
            client_verified: verdict.client_verified,
            cache_hit: verdict.view.cache_hit,
            taint: verdict.view.taint,
        })
    }
}
