//! Built-in service observability: atomic counters, cycle/latency
//! accounting, and a structured event log — all in-tree, exportable as
//! JSON with no external dependencies.
//!
//! Counters are lock-free atomics so worker threads update them without
//! contention; latency samples and events take a short mutex only at
//! record time. Percentiles are computed at export.

use crate::faults::{FaultKind, FAULT_KIND_COUNT};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning: a panicking worker must
/// never cascade into a fleet-wide crash just because it died while
/// holding a metrics or queue lock. The guarded data here is counters,
/// samples, and queue entries — all valid at every intermediate state,
/// so recovery is safe. (Same pattern as `engarde_core::cache`.)
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What happened, for the structured event log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// Session accepted into the queue.
    Admitted,
    /// Session refused: queue full.
    RejectedBusy,
    /// Session started on a shard.
    Started,
    /// Transient failure; the session will be retried.
    Retried,
    /// Session evicted (stall or budget).
    Evicted,
    /// Session finished with a verdict.
    Completed,
    /// Session failed terminally.
    Failed,
    /// Session's verdict was replayed from the content-addressed cache.
    CacheHit,
    /// Service entered drain.
    DrainStarted,
    /// The fault layer injected a fault into this session.
    FaultInjected,
    /// A shard's circuit breaker shed this session.
    Shed,
    /// A worker (or virtual-time shard) died.
    WorkerDied,
    /// A shard's circuit breaker opened (fault rate spiked).
    BreakerOpened,
    /// A shard's circuit breaker closed again after a clean probe.
    BreakerClosed,
    /// The persistent verdict store opened (recovery scan complete).
    StoreOpened,
    /// The store was disabled or a store operation failed; the service
    /// degrades to memory-only operation instead of crashing.
    StoreDegraded,
}

impl EventKind {
    fn name(self) -> &'static str {
        match self {
            EventKind::Admitted => "admitted",
            EventKind::RejectedBusy => "rejected_busy",
            EventKind::Started => "started",
            EventKind::Retried => "retried",
            EventKind::Evicted => "evicted",
            EventKind::Completed => "completed",
            EventKind::Failed => "failed",
            EventKind::CacheHit => "cache_hit",
            EventKind::DrainStarted => "drain_started",
            EventKind::FaultInjected => "fault_injected",
            EventKind::Shed => "shed",
            EventKind::WorkerDied => "worker_died",
            EventKind::BreakerOpened => "breaker_opened",
            EventKind::BreakerClosed => "breaker_closed",
            EventKind::StoreOpened => "store_opened",
            EventKind::StoreDegraded => "store_degraded",
        }
    }
}

/// One structured log record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (assigned at record time).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The session's name (empty for service-wide events).
    pub session: String,
    /// Shard index, when known.
    pub shard: Option<usize>,
    /// Free-form detail (verdict, eviction reason, error).
    pub detail: String,
}

/// Per-stage accumulated model cycles across all completed sessions.
#[derive(Default)]
struct StageTotals {
    receive_decrypt: AtomicU64,
    disassembly: AtomicU64,
    policy_checking: AtomicU64,
    loading_relocation: AtomicU64,
}

/// Verdict-cache counters, mirrored from the cache's own
/// [`CacheStats`](engarde_core::cache::CacheStats) at drain/export time.
#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    cycles_saved: AtomicU64,
    warm_hits: AtomicU64,
}

/// Persistent-store counters. Gauges (`live_records`, `segments`,
/// recovery findings) are mirrored idempotently from the store's own
/// [`StoreStats`](engarde_store::StoreStats) via
/// [`ServeMetrics::set_store_stats`]; the flow counters (`hydrated`,
/// `flushed`, the flush-queue high-water mark) are incremented by the
/// service as the events happen.
#[derive(Default)]
struct StoreCounters {
    enabled: AtomicU64,
    hydrated: AtomicU64,
    flushed: AtomicU64,
    flush_queue_highwater: AtomicU64,
    live_records: AtomicU64,
    stored_records: AtomicU64,
    segments: AtomicU64,
    compactions: AtomicU64,
    records_recovered: AtomicU64,
    torn_tail_truncations: AtomicU64,
    corrupt_records: AtomicU64,
    garbage_segments: AtomicU64,
    lost_segments: AtomicU64,
}

/// Snapshot of the persistent-store counters, as plain numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StoreSnapshot {
    /// Whether a store was attached to the service at all.
    pub enabled: bool,
    /// Records hydrated into the fleet cache at warm start.
    pub hydrated: u64,
    /// Records flushed from the dirty queue to disk.
    pub flushed: u64,
    /// Deepest the write-behind dirty queue ever got.
    pub flush_queue_highwater: u64,
    /// Distinct live keys in the store (last-write-wins).
    pub live_records: u64,
    /// Sealed records on disk (live + superseded).
    pub stored_records: u64,
    /// Segment files on disk.
    pub segments: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Authenticated records the last recovery scan admitted.
    pub records_recovered: u64,
    /// Torn tails the last recovery scan truncated.
    pub torn_tail_truncations: u64,
    /// Authenticated-but-corrupt records the last recovery scan dropped.
    pub corrupt_records: u64,
    /// Whole segments the last recovery scan skipped as garbage.
    pub garbage_segments: u64,
    /// Segment-index holes the last recovery scan observed.
    pub lost_segments: u64,
}

/// Taint-analysis verdict counters, accumulated from
/// [`TaintStats`](engarde_core::analysis::TaintStats) across every
/// session whose policy run touched the taint engine (cache hits
/// replay the original session's stats and count here too).
#[derive(Default)]
struct TaintCounters {
    sessions: AtomicU64,
    leaks_found: AtomicU64,
    tainted_branches: AtomicU64,
    scc_count: AtomicU64,
    fixpoint_iterations: AtomicU64,
    spill_cells: AtomicU64,
    weak_updates: AtomicU64,
    unresolved_store_sinks: AtomicU64,
    cycles_charged: AtomicU64,
}

/// Snapshot of the accumulated taint counters, as plain numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TaintSnapshot {
    /// Sessions whose verdict included taint statistics.
    pub sessions: u64,
    /// Leak findings (out-of-enclave writes + exit operands) summed.
    pub leaks_found: u64,
    /// Secret-dependent branch findings summed.
    pub tainted_branches: u64,
    /// Call-graph SCCs analyzed, summed.
    pub scc_count: u64,
    /// Fixpoint block visits, summed.
    pub fixpoint_iterations: u64,
    /// Distinct memory cells the spill domain tracked, summed.
    pub spill_cells: u64,
    /// Weak-update events (unnameable tainted stores), summed.
    pub weak_updates: u64,
    /// Unresolved-store sink candidates flagged, summed.
    pub unresolved_store_sinks: u64,
    /// Native cycles charged for taint analyses, summed.
    pub cycles_charged: u64,
}

/// Work-stealing scheduler counters: steals, batch admissions, and
/// deque-depth pressure, accumulated by both backends (virtual-time
/// deterministic steals and threaded load-based steals feed the same
/// counters).
#[derive(Default)]
struct SchedCounters {
    steals: AtomicU64,
    stolen_sessions: AtomicU64,
    drained_from_dead: AtomicU64,
    batches: AtomicU64,
    batched_sessions: AtomicU64,
    batch_size_highwater: AtomicU64,
    deque_depth_highwater: AtomicU64,
}

/// Snapshot of the scheduler counters, as plain numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SchedSnapshot {
    /// Work items an idle worker stole from a peer's deque.
    pub steals: u64,
    /// Sessions that moved in those steals (a batch steals as a unit).
    pub stolen_sessions: u64,
    /// ... of which came off a *dead* worker's deque (the steal-aware
    /// worker-death path: queued work outlives its home worker).
    pub drained_from_dead: u64,
    /// Batches formed (an item becomes a batch when its first follower
    /// joins).
    pub batches: u64,
    /// Follower sessions admitted into an existing item.
    pub batched_sessions: u64,
    /// Largest batch ever formed.
    pub batch_size_highwater: u64,
    /// Deepest any single home deque ever got at admission.
    pub deque_depth_highwater: u64,
}

/// Threaded-backend contention counters: the subset of scheduler
/// activity performed by real OS worker threads, split out from the
/// aggregate [`SchedCounters`] so CI can watch contention on real
/// cores separately from the deterministic virtual-time scheduler.
#[derive(Default)]
struct ThreadedCounters {
    steals: AtomicU64,
    stolen_sessions: AtomicU64,
    drained_from_dead: AtomicU64,
    batches: AtomicU64,
    batched_sessions: AtomicU64,
}

/// Snapshot of the threaded-backend scheduler counters, as plain
/// numbers. Always a (possibly zero) subset of [`SchedSnapshot`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ThreadedSnapshot {
    /// Work items an idle OS worker stole from a peer's deque.
    pub steals: u64,
    /// Sessions that moved in those steals.
    pub stolen_sessions: u64,
    /// ... of which came off a dead worker's deque.
    pub drained_from_dead: u64,
    /// Batches formed on the threaded admission path.
    pub batches: u64,
    /// Follower sessions admitted into an existing threaded item.
    pub batched_sessions: u64,
}

/// Per-fault-kind lifecycle counters: how many faults the layer
/// injected, how many a typed error detected, how many retries they
/// cost, how many sessions recovered cleanly, and how many were
/// evicted because of the fault.
struct FaultCounters {
    injected: [AtomicU64; FAULT_KIND_COUNT],
    detected: [AtomicU64; FAULT_KIND_COUNT],
    retried: [AtomicU64; FAULT_KIND_COUNT],
    recovered: [AtomicU64; FAULT_KIND_COUNT],
    evicted: [AtomicU64; FAULT_KIND_COUNT],
}

impl Default for FaultCounters {
    fn default() -> Self {
        let zeroes = || std::array::from_fn(|_| AtomicU64::new(0));
        FaultCounters {
            injected: zeroes(),
            detected: zeroes(),
            retried: zeroes(),
            recovered: zeroes(),
            evicted: zeroes(),
        }
    }
}

/// One fault kind's lifecycle counters, as plain numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultKindStats {
    /// Faults of this kind the layer injected.
    pub injected: u64,
    /// ... of which a typed error detected.
    pub detected: u64,
    /// Retries spent on sessions carrying this fault.
    pub retried: u64,
    /// Faulted sessions that still reached a clean outcome.
    pub recovered: u64,
    /// Faulted sessions the service evicted.
    pub evicted: u64,
}

/// Snapshot of every fault kind's counters, indexable by
/// [`FaultKind::index`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultStatsSnapshot {
    /// Per-kind stats in [`FaultKind::ALL`] order.
    pub per_kind: [FaultKindStats; FAULT_KIND_COUNT],
}

impl FaultStatsSnapshot {
    /// The stats for one kind.
    pub fn kind(&self, kind: FaultKind) -> FaultKindStats {
        self.per_kind[kind.index()]
    }

    /// Totals across every kind.
    pub fn totals(&self) -> FaultKindStats {
        let mut t = FaultKindStats::default();
        for s in &self.per_kind {
            t.injected += s.injected;
            t.detected += s.detected;
            t.retried += s.retried;
            t.recovered += s.recovered;
            t.evicted += s.evicted;
        }
        t
    }
}

/// Service-wide metrics. One instance is shared (via `Arc`) between the
/// admission path, every worker, and the drain path.
#[derive(Default)]
pub struct ServeMetrics {
    admitted: AtomicU64,
    rejected_busy: AtomicU64,
    evicted: AtomicU64,
    completed: AtomicU64,
    compliant: AtomicU64,
    noncompliant: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
    workers_died: AtomicU64,
    faults: FaultCounters,
    sched: SchedCounters,
    threaded: ThreadedCounters,
    queue_depth_highwater: AtomicUsize,
    stage_cycles: StageTotals,
    cache: CacheCounters,
    store: StoreCounters,
    taint: TaintCounters,
    total_cycles: AtomicU64,
    total_wall_nanos: AtomicU64,
    latency_cycles: Mutex<Vec<u64>>,
    events: Mutex<Vec<Event>>,
    seq: AtomicU64,
}

/// Counter snapshot, as plain numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CounterSnapshot {
    /// Sessions accepted into the queue.
    pub admitted: u64,
    /// Sessions refused with `Busy`.
    pub rejected_busy: u64,
    /// Sessions evicted mid-protocol.
    pub evicted: u64,
    /// Sessions that reached a verdict.
    pub completed: u64,
    /// ... of which compliant.
    pub compliant: u64,
    /// ... of which rejected by policy.
    pub noncompliant: u64,
    /// Sessions that failed terminally (non-eviction).
    pub failed: u64,
    /// Transient retries performed.
    pub retries: u64,
    /// Sessions shed by an open circuit breaker.
    pub shed: u64,
    /// Workers (threads or virtual shards) that died.
    pub workers_died: u64,
    /// Highest queue depth observed.
    pub queue_depth_highwater: usize,
    /// Verdict-cache probes that found a usable verdict.
    pub cache_hits: u64,
    /// Verdict-cache probes that found nothing.
    pub cache_misses: u64,
    /// Verdict-cache entries evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Verdict-cache entries inserted.
    pub cache_insertions: u64,
    /// Cache hits served by entries hydrated from the persistent store.
    pub cache_warm_hits: u64,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records an event and bumps the matching counter.
    pub fn record(&self, kind: EventKind, session: &str, shard: Option<usize>, detail: &str) {
        match kind {
            EventKind::Admitted => self.admitted.fetch_add(1, Ordering::Relaxed),
            EventKind::RejectedBusy => self.rejected_busy.fetch_add(1, Ordering::Relaxed),
            EventKind::Retried => self.retries.fetch_add(1, Ordering::Relaxed),
            EventKind::Evicted => self.evicted.fetch_add(1, Ordering::Relaxed),
            EventKind::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
            EventKind::Completed => self.completed.fetch_add(1, Ordering::Relaxed),
            EventKind::Shed => self.shed.fetch_add(1, Ordering::Relaxed),
            EventKind::WorkerDied => self.workers_died.fetch_add(1, Ordering::Relaxed),
            // Cache-hit counters come from the cache itself (the
            // authoritative source) via `set_cache_stats`; the event is
            // log-only so per-session records and cache totals cannot
            // drift apart. Fault-lifecycle counters come through the
            // typed `record_fault_*` methods for the same reason.
            EventKind::Started
            | EventKind::CacheHit
            | EventKind::DrainStarted
            | EventKind::FaultInjected
            | EventKind::BreakerOpened
            | EventKind::BreakerClosed
            | EventKind::StoreOpened
            | EventKind::StoreDegraded => 0,
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut events = lock_recover(&self.events);
        events.push(Event {
            seq,
            kind,
            session: session.to_string(),
            shard,
            detail: detail.to_string(),
        });
    }

    /// Records a completed session's verdict polarity.
    pub fn record_verdict(&self, compliant: bool) {
        if compliant {
            self.compliant.fetch_add(1, Ordering::Relaxed);
        } else {
            self.noncompliant.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a session's stage costs, total model cycles, end-to-end
    /// latency (model cycles), and wall time.
    pub fn record_timing(
        &self,
        stages: &engarde_core::provision::StageCycles,
        cycles: u64,
        latency_cycles: u64,
        wall_nanos: u64,
    ) {
        self.stage_cycles
            .receive_decrypt
            .fetch_add(stages.receive_decrypt, Ordering::Relaxed);
        self.stage_cycles
            .disassembly
            .fetch_add(stages.disassembly, Ordering::Relaxed);
        self.stage_cycles
            .policy_checking
            .fetch_add(stages.policy_checking, Ordering::Relaxed);
        self.stage_cycles
            .loading_relocation
            .fetch_add(stages.loading_relocation, Ordering::Relaxed);
        self.total_cycles.fetch_add(cycles, Ordering::Relaxed);
        self.total_wall_nanos
            .fetch_add(wall_nanos, Ordering::Relaxed);
        lock_recover(&self.latency_cycles).push(latency_cycles);
    }

    /// Accumulates one session's taint-analysis counters (call once
    /// per completed session that carried taint statistics).
    pub fn record_taint(&self, stats: &engarde_core::analysis::TaintStats) {
        self.taint.sessions.fetch_add(1, Ordering::Relaxed);
        self.taint
            .leaks_found
            .fetch_add(stats.leaks_found, Ordering::Relaxed);
        self.taint
            .tainted_branches
            .fetch_add(stats.tainted_branches, Ordering::Relaxed);
        self.taint
            .scc_count
            .fetch_add(stats.scc_count, Ordering::Relaxed);
        self.taint
            .fixpoint_iterations
            .fetch_add(stats.fixpoint_iterations, Ordering::Relaxed);
        self.taint
            .spill_cells
            .fetch_add(stats.spill_cells, Ordering::Relaxed);
        self.taint
            .weak_updates
            .fetch_add(stats.weak_updates, Ordering::Relaxed);
        self.taint
            .unresolved_store_sinks
            .fetch_add(stats.unresolved_store_sinks, Ordering::Relaxed);
        self.taint
            .cycles_charged
            .fetch_add(stats.cycles_charged, Ordering::Relaxed);
    }

    /// Snapshot of the accumulated taint counters.
    pub fn taint_stats(&self) -> TaintSnapshot {
        TaintSnapshot {
            sessions: self.taint.sessions.load(Ordering::Relaxed),
            leaks_found: self.taint.leaks_found.load(Ordering::Relaxed),
            tainted_branches: self.taint.tainted_branches.load(Ordering::Relaxed),
            scc_count: self.taint.scc_count.load(Ordering::Relaxed),
            fixpoint_iterations: self.taint.fixpoint_iterations.load(Ordering::Relaxed),
            spill_cells: self.taint.spill_cells.load(Ordering::Relaxed),
            weak_updates: self.taint.weak_updates.load(Ordering::Relaxed),
            unresolved_store_sinks: self.taint.unresolved_store_sinks.load(Ordering::Relaxed),
            cycles_charged: self.taint.cycles_charged.load(Ordering::Relaxed),
        }
    }

    /// Records that the fault layer injected a fault of `kind`.
    pub fn record_fault_injected(&self, kind: FaultKind) {
        self.faults.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a typed error detected a fault of `kind`.
    pub fn record_fault_detected(&self, kind: FaultKind) {
        self.faults.detected[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry spent on a session faulted with `kind`.
    pub fn record_fault_retried(&self, kind: FaultKind) {
        self.faults.retried[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a session faulted with `kind` reached a clean
    /// outcome anyway.
    pub fn record_fault_recovered(&self, kind: FaultKind) {
        self.faults.recovered[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a session faulted with `kind` was evicted.
    pub fn record_fault_evicted(&self, kind: FaultKind) {
        self.faults.evicted[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of every fault kind's lifecycle counters.
    pub fn fault_stats(&self) -> FaultStatsSnapshot {
        let mut snap = FaultStatsSnapshot::default();
        for i in 0..FAULT_KIND_COUNT {
            snap.per_kind[i] = FaultKindStats {
                injected: self.faults.injected[i].load(Ordering::Relaxed),
                detected: self.faults.detected[i].load(Ordering::Relaxed),
                retried: self.faults.retried[i].load(Ordering::Relaxed),
                recovered: self.faults.recovered[i].load(Ordering::Relaxed),
                evicted: self.faults.evicted[i].load(Ordering::Relaxed),
            };
        }
        snap
    }

    /// Records one steal: a whole work item of `sessions` sessions
    /// moved from a victim deque to an idle worker. `from_dead` marks
    /// steals that drained a dead worker's deque.
    pub fn record_steal(&self, sessions: u64, from_dead: bool) {
        self.sched.steals.fetch_add(1, Ordering::Relaxed);
        self.sched
            .stolen_sessions
            .fetch_add(sessions, Ordering::Relaxed);
        if from_dead {
            self.sched
                .drained_from_dead
                .fetch_add(sessions, Ordering::Relaxed);
        }
    }

    /// Records a follower joining an already-queued work item, which
    /// now holds `batch_len` sessions. The first follower (batch_len 2)
    /// is what turns an item into a batch.
    pub fn record_batch_join(&self, batch_len: u64) {
        self.sched.batched_sessions.fetch_add(1, Ordering::Relaxed);
        if batch_len == 2 {
            self.sched.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.sched
            .batch_size_highwater
            .fetch_max(batch_len, Ordering::Relaxed);
    }

    /// Raises the per-deque depth high-water mark to at least `depth`.
    pub fn observe_deque_depth(&self, depth: u64) {
        self.sched
            .deque_depth_highwater
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one steal performed by a real OS worker thread: feeds
    /// the aggregate scheduler counters *and* the threaded-only block.
    pub fn record_threaded_steal(&self, sessions: u64, from_dead: bool) {
        self.record_steal(sessions, from_dead);
        self.threaded.steals.fetch_add(1, Ordering::Relaxed);
        self.threaded
            .stolen_sessions
            .fetch_add(sessions, Ordering::Relaxed);
        if from_dead {
            self.threaded
                .drained_from_dead
                .fetch_add(sessions, Ordering::Relaxed);
        }
    }

    /// Records a batch join on the threaded admission path: feeds the
    /// aggregate scheduler counters *and* the threaded-only block.
    pub fn record_threaded_batch_join(&self, batch_len: u64) {
        self.record_batch_join(batch_len);
        self.threaded
            .batched_sessions
            .fetch_add(1, Ordering::Relaxed);
        if batch_len == 2 {
            self.threaded.batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the threaded-backend scheduler counters.
    pub fn threaded_stats(&self) -> ThreadedSnapshot {
        ThreadedSnapshot {
            steals: self.threaded.steals.load(Ordering::Relaxed),
            stolen_sessions: self.threaded.stolen_sessions.load(Ordering::Relaxed),
            drained_from_dead: self.threaded.drained_from_dead.load(Ordering::Relaxed),
            batches: self.threaded.batches.load(Ordering::Relaxed),
            batched_sessions: self.threaded.batched_sessions.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the work-stealing scheduler counters.
    pub fn sched_stats(&self) -> SchedSnapshot {
        SchedSnapshot {
            steals: self.sched.steals.load(Ordering::Relaxed),
            stolen_sessions: self.sched.stolen_sessions.load(Ordering::Relaxed),
            drained_from_dead: self.sched.drained_from_dead.load(Ordering::Relaxed),
            batches: self.sched.batches.load(Ordering::Relaxed),
            batched_sessions: self.sched.batched_sessions.load(Ordering::Relaxed),
            batch_size_highwater: self.sched.batch_size_highwater.load(Ordering::Relaxed),
            deque_depth_highwater: self.sched.deque_depth_highwater.load(Ordering::Relaxed),
        }
    }

    /// Raises the queue-depth high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_highwater
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Mirrors the verdict cache's cumulative counters into the metrics
    /// (the cache is the authoritative source; these are stores, not
    /// increments, so the call is idempotent).
    pub fn set_cache_stats(&self, stats: &engarde_core::cache::CacheStats) {
        self.cache.hits.store(stats.hits, Ordering::Relaxed);
        self.cache.misses.store(stats.misses, Ordering::Relaxed);
        self.cache
            .evictions
            .store(stats.evictions, Ordering::Relaxed);
        self.cache
            .insertions
            .store(stats.insertions, Ordering::Relaxed);
        self.cache
            .cycles_saved
            .store(stats.cycles_saved, Ordering::Relaxed);
        self.cache
            .warm_hits
            .store(stats.warm_hits, Ordering::Relaxed);
    }

    /// Marks that a persistent store is attached (the `store` JSON
    /// block stays zeroed-but-present without one).
    pub fn mark_store_enabled(&self) {
        self.store.enabled.store(1, Ordering::Relaxed);
    }

    /// Records `n` verdicts hydrated from the store at warm start.
    pub fn record_store_hydrated(&self, n: u64) {
        self.store.hydrated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` dirty verdicts flushed through to the store.
    pub fn record_store_flushed(&self, n: u64) {
        self.store.flushed.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the flush-queue high-water mark to at least `depth`.
    pub fn observe_flush_queue_depth(&self, depth: u64) {
        self.store
            .flush_queue_highwater
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Mirrors the persistent store's own counters (the store is the
    /// authoritative source; these are stores, not increments, so the
    /// call is idempotent).
    pub fn set_store_stats(&self, stats: &engarde_store::StoreStats) {
        self.store
            .live_records
            .store(stats.live_records, Ordering::Relaxed);
        self.store
            .stored_records
            .store(stats.stored_records, Ordering::Relaxed);
        self.store.segments.store(stats.segments, Ordering::Relaxed);
        self.store
            .compactions
            .store(stats.compactions, Ordering::Relaxed);
        self.store
            .records_recovered
            .store(stats.recovery.records_recovered, Ordering::Relaxed);
        self.store
            .torn_tail_truncations
            .store(stats.recovery.torn_tail_truncations, Ordering::Relaxed);
        self.store
            .corrupt_records
            .store(stats.recovery.corrupt_records, Ordering::Relaxed);
        self.store
            .garbage_segments
            .store(stats.recovery.garbage_segments, Ordering::Relaxed);
        self.store
            .lost_segments
            .store(stats.recovery.lost_segments, Ordering::Relaxed);
    }

    /// Snapshot of the persistent-store counters.
    pub fn store_stats(&self) -> StoreSnapshot {
        StoreSnapshot {
            enabled: self.store.enabled.load(Ordering::Relaxed) != 0,
            hydrated: self.store.hydrated.load(Ordering::Relaxed),
            flushed: self.store.flushed.load(Ordering::Relaxed),
            flush_queue_highwater: self.store.flush_queue_highwater.load(Ordering::Relaxed),
            live_records: self.store.live_records.load(Ordering::Relaxed),
            stored_records: self.store.stored_records.load(Ordering::Relaxed),
            segments: self.store.segments.load(Ordering::Relaxed),
            compactions: self.store.compactions.load(Ordering::Relaxed),
            records_recovered: self.store.records_recovered.load(Ordering::Relaxed),
            torn_tail_truncations: self.store.torn_tail_truncations.load(Ordering::Relaxed),
            corrupt_records: self.store.corrupt_records.load(Ordering::Relaxed),
            garbage_segments: self.store.garbage_segments.load(Ordering::Relaxed),
            lost_segments: self.store.lost_segments.load(Ordering::Relaxed),
        }
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            compliant: self.compliant.load(Ordering::Relaxed),
            noncompliant: self.noncompliant.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            workers_died: self.workers_died.load(Ordering::Relaxed),
            queue_depth_highwater: self.queue_depth_highwater.load(Ordering::Relaxed),
            cache_hits: self.cache.hits.load(Ordering::Relaxed),
            cache_misses: self.cache.misses.load(Ordering::Relaxed),
            cache_evictions: self.cache.evictions.load(Ordering::Relaxed),
            cache_insertions: self.cache.insertions.load(Ordering::Relaxed),
            cache_warm_hits: self.cache.warm_hits.load(Ordering::Relaxed),
        }
    }

    /// Latency percentile in model cycles (`q` in 0..=100). `None` with
    /// no samples.
    pub fn latency_percentile(&self, q: u32) -> Option<u64> {
        let samples = lock_recover(&self.latency_cycles);
        percentile(&samples, q)
    }

    /// Accumulated model cycles across sessions.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles.load(Ordering::Relaxed)
    }

    /// Accumulated wall time across sessions (threaded mode only).
    pub fn total_wall_nanos(&self) -> u64 {
        self.total_wall_nanos.load(Ordering::Relaxed)
    }

    /// A copy of the event log, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        let mut events = lock_recover(&self.events).clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Serializes counters, stage totals, latency percentiles, and the
    /// event log as a JSON object.
    pub fn to_json(&self) -> String {
        let c = self.counters();
        let samples = lock_recover(&self.latency_cycles).clone();
        let mut out = String::from("{\n");
        let counter_fields = [
            ("admitted", c.admitted),
            ("rejected_busy", c.rejected_busy),
            ("evicted", c.evicted),
            ("completed", c.completed),
            ("compliant", c.compliant),
            ("noncompliant", c.noncompliant),
            ("failed", c.failed),
            ("retries", c.retries),
            ("shed", c.shed),
            ("workers_died", c.workers_died),
            ("queue_depth_highwater", c.queue_depth_highwater as u64),
        ];
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in counter_fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"stage_cycles\": {{\"receive_decrypt\": {}, \"disassembly\": {}, \"policy_checking\": {}, \"loading_relocation\": {}}},\n",
            self.stage_cycles.receive_decrypt.load(Ordering::Relaxed),
            self.stage_cycles.disassembly.load(Ordering::Relaxed),
            self.stage_cycles.policy_checking.load(Ordering::Relaxed),
            self.stage_cycles.loading_relocation.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "  \"verdict_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"insertions\": {}, \"cycles_saved\": {}, \"warm_hits\": {}}},\n",
            c.cache_hits,
            c.cache_misses,
            c.cache_evictions,
            c.cache_insertions,
            self.cache.cycles_saved.load(Ordering::Relaxed),
            c.cache_warm_hits,
        ));
        let st = self.store_stats();
        out.push_str(&format!(
            "  \"store\": {{\"enabled\": {}, \"hydrated\": {}, \"flushed\": {}, \"flush_queue_highwater\": {}, \"live_records\": {}, \"stored_records\": {}, \"segments\": {}, \"compactions\": {}, \"recovery\": {{\"records_recovered\": {}, \"torn_tail_truncations\": {}, \"corrupt_records\": {}, \"garbage_segments\": {}, \"lost_segments\": {}}}}},\n",
            st.enabled,
            st.hydrated,
            st.flushed,
            st.flush_queue_highwater,
            st.live_records,
            st.stored_records,
            st.segments,
            st.compactions,
            st.records_recovered,
            st.torn_tail_truncations,
            st.corrupt_records,
            st.garbage_segments,
            st.lost_segments,
        ));
        let t = self.taint_stats();
        out.push_str(&format!(
            "  \"taint\": {{\"sessions\": {}, \"leaks_found\": {}, \"tainted_branches\": {}, \"scc_count\": {}, \"fixpoint_iterations\": {}, \"spill_cells\": {}, \"weak_updates\": {}, \"unresolved_store_sinks\": {}, \"cycles_charged\": {}}},\n",
            t.sessions,
            t.leaks_found,
            t.tainted_branches,
            t.scc_count,
            t.fixpoint_iterations,
            t.spill_cells,
            t.weak_updates,
            t.unresolved_store_sinks,
            t.cycles_charged,
        ));
        let fstats = self.fault_stats();
        out.push_str("  \"faults\": {");
        for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
            let s = fstats.kind(kind);
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"injected\": {}, \"detected\": {}, \"retried\": {}, \"recovered\": {}, \"evicted\": {}}}",
                kind.name(),
                s.injected,
                s.detected,
                s.retried,
                s.recovered,
                s.evicted,
            ));
        }
        out.push_str("},\n");
        let sc = self.sched_stats();
        out.push_str(&format!(
            "  \"scheduler\": {{\"steals\": {}, \"stolen_sessions\": {}, \"drained_from_dead\": {}, \"batches\": {}, \"batched_sessions\": {}, \"batch_size_highwater\": {}, \"deque_depth_highwater\": {}}},\n",
            sc.steals,
            sc.stolen_sessions,
            sc.drained_from_dead,
            sc.batches,
            sc.batched_sessions,
            sc.batch_size_highwater,
            sc.deque_depth_highwater,
        ));
        let th = self.threaded_stats();
        out.push_str(&format!(
            "  \"threaded\": {{\"steals\": {}, \"stolen_sessions\": {}, \"drained_from_dead\": {}, \"batches\": {}, \"batched_sessions\": {}}},\n",
            th.steals,
            th.stolen_sessions,
            th.drained_from_dead,
            th.batches,
            th.batched_sessions,
        ));
        out.push_str(&format!(
            "  \"latency_cycles\": {{\"samples\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
            samples.len(),
            percentile(&samples, 50).unwrap_or(0),
            percentile(&samples, 99).unwrap_or(0),
            samples.iter().copied().max().unwrap_or(0),
        ));
        out.push_str(&format!(
            "  \"total_cycles\": {},\n  \"total_wall_nanos\": {},\n",
            self.total_cycles(),
            self.total_wall_nanos()
        ));
        out.push_str("  \"events\": [\n");
        let events = self.events();
        for (i, e) in events.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"kind\": \"{}\", \"session\": \"{}\", \"shard\": {}, \"detail\": \"{}\"}}{}\n",
                e.seq,
                e.kind.name(),
                json_escape(&e.session),
                e.shard.map_or("null".to_string(), |s| s.to_string()),
                json_escape(&e.detail),
                if i + 1 < events.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Nearest-rank percentile over unsorted samples. `None` on an empty
/// slice; out-of-range quantiles (`q > 100`) clamp to the maximum
/// rather than indexing past the end. Rank arithmetic is widened to
/// `u128` so `q * len` cannot overflow for any input on any platform.
fn percentile(samples: &[u64], q: u32) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let len = sorted.len() as u128;
    let rank = ((q as u128 * len).div_ceil(100)).clamp(1, len) as usize;
    Some(sorted[rank - 1])
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_events() {
        let m = ServeMetrics::new();
        m.record(EventKind::Admitted, "s0", None, "");
        m.record(EventKind::Admitted, "s1", None, "");
        m.record(EventKind::RejectedBusy, "s2", None, "depth 4");
        m.record(EventKind::Completed, "s0", Some(1), "compliant");
        m.record_verdict(true);
        let c = m.counters();
        assert_eq!(c.admitted, 2);
        assert_eq!(c.rejected_busy, 1);
        assert_eq!(c.completed, 1);
        assert_eq!(c.compliant, 1);
        let events = m.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2].kind, EventKind::RejectedBusy);
        assert_eq!(events[3].shard, Some(1));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50), Some(50));
        assert_eq!(percentile(&samples, 99), Some(99));
        assert_eq!(percentile(&samples, 100), Some(100));
        assert_eq!(percentile(&[42], 50), Some(42));
        assert_eq!(percentile(&[], 50), None);
    }

    #[test]
    fn percentile_of_empty_samples_is_none_for_every_quantile() {
        for q in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[], q), None, "q={q}");
        }
    }

    #[test]
    fn percentile_q0_is_the_minimum() {
        // Nearest-rank with q=0 yields rank 0, which must clamp to the
        // first element, not index out of bounds.
        assert_eq!(percentile(&[30, 10, 20], 0), Some(10));
        assert_eq!(percentile(&[7], 0), Some(7));
    }

    #[test]
    fn percentile_q100_is_the_maximum() {
        assert_eq!(percentile(&[30, 10, 20], 100), Some(30));
        assert_eq!(percentile(&[7], 100), Some(7));
    }

    #[test]
    fn percentile_single_sample_is_that_sample_for_every_quantile() {
        for q in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[42], q), Some(42), "q={q}");
        }
    }

    #[test]
    fn percentile_two_samples_split_at_the_nearest_rank() {
        // rank = ceil(q·n/100) clamped to [1, n]: q≤50 → first, q>50 →
        // second.
        assert_eq!(percentile(&[10, 20], 50), Some(10));
        assert_eq!(percentile(&[10, 20], 51), Some(20));
    }

    #[test]
    fn percentile_out_of_range_quantile_clamps_to_the_maximum() {
        // Callers promise q in 0..=100, but the helper must not index
        // out of bounds (or overflow the rank product) if they lie.
        assert_eq!(percentile(&[30, 10, 20], 101), Some(30));
        assert_eq!(percentile(&[30, 10, 20], u32::MAX), Some(30));
        assert_eq!(percentile(&[7], u32::MAX), Some(7));
        assert_eq!(percentile(&[], u32::MAX), None);
    }

    #[test]
    fn scheduler_counters_accumulate_and_export() {
        let m = ServeMetrics::new();
        // Item becomes a batch at its first follower (len 2); the
        // highwater tracks the largest batch, not the last join.
        m.record_batch_join(2);
        m.record_batch_join(3);
        m.record_batch_join(2);
        m.record_steal(3, false);
        m.record_steal(1, true);
        m.observe_deque_depth(4);
        m.observe_deque_depth(2);
        let s = m.sched_stats();
        assert_eq!(s.steals, 2);
        assert_eq!(s.stolen_sessions, 4);
        assert_eq!(s.drained_from_dead, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_sessions, 3);
        assert_eq!(s.batch_size_highwater, 3);
        assert_eq!(s.deque_depth_highwater, 4);
        assert!(m.to_json().contains(
            "\"scheduler\": {\"steals\": 2, \"stolen_sessions\": 4, \
             \"drained_from_dead\": 1, \"batches\": 2, \"batched_sessions\": 3, \
             \"batch_size_highwater\": 3, \"deque_depth_highwater\": 4}"
        ));
    }

    #[test]
    fn scheduler_block_is_present_and_zeroed_without_steals_or_batches() {
        // A run with stealing never triggered and batching disabled
        // still exports the block, so jq gates can assert on it
        // unconditionally.
        let m = ServeMetrics::new();
        assert_eq!(m.sched_stats(), SchedSnapshot::default());
        assert!(m.to_json().contains(
            "\"scheduler\": {\"steals\": 0, \"stolen_sessions\": 0, \
             \"drained_from_dead\": 0, \"batches\": 0, \"batched_sessions\": 0, \
             \"batch_size_highwater\": 0, \"deque_depth_highwater\": 0}"
        ));
        // The threaded block is likewise always present, so jq gates
        // can assert on it even for virtual-time runs.
        assert!(m.to_json().contains(
            "\"threaded\": {\"steals\": 0, \"stolen_sessions\": 0, \
             \"drained_from_dead\": 0, \"batches\": 0, \"batched_sessions\": 0}"
        ));
    }

    #[test]
    fn threaded_counters_feed_both_blocks() {
        let m = ServeMetrics::new();
        // A virtual-time steal touches only the aggregate block...
        m.record_steal(2, false);
        // ...while threaded steals and joins feed both.
        m.record_threaded_steal(3, false);
        m.record_threaded_steal(1, true);
        m.record_threaded_batch_join(2);
        m.record_threaded_batch_join(3);
        let th = m.threaded_stats();
        assert_eq!(th.steals, 2);
        assert_eq!(th.stolen_sessions, 4);
        assert_eq!(th.drained_from_dead, 1);
        assert_eq!(th.batches, 1);
        assert_eq!(th.batched_sessions, 2);
        let s = m.sched_stats();
        assert_eq!(s.steals, 3, "aggregate includes the virtual steal");
        assert_eq!(s.stolen_sessions, 6);
        assert_eq!(s.batched_sessions, 2);
        assert_eq!(s.batch_size_highwater, 3);
        assert!(m.to_json().contains(
            "\"threaded\": {\"steals\": 2, \"stolen_sessions\": 4, \
             \"drained_from_dead\": 1, \"batches\": 1, \"batched_sessions\": 2}"
        ));
    }

    #[test]
    fn cache_stats_are_mirrored_and_exported() {
        let m = ServeMetrics::new();
        let stats = engarde_core::cache::CacheStats {
            hits: 5,
            misses: 3,
            evictions: 1,
            insertions: 4,
            cycles_saved: 123_456,
            warm_hits: 2,
        };
        m.set_cache_stats(&stats);
        // Idempotent: stores, not increments.
        m.set_cache_stats(&stats);
        let c = m.counters();
        assert_eq!(
            (
                c.cache_hits,
                c.cache_misses,
                c.cache_evictions,
                c.cache_insertions,
                c.cache_warm_hits,
            ),
            (5, 3, 1, 4, 2)
        );
        let json = m.to_json();
        assert!(json.contains(
            "\"verdict_cache\": {\"hits\": 5, \"misses\": 3, \"evictions\": 1, \
             \"insertions\": 4, \"cycles_saved\": 123456, \"warm_hits\": 2}"
        ));
        m.record(EventKind::CacheHit, "tenant-1", Some(0), "verdict replayed");
        assert!(m.to_json().contains("\"kind\": \"cache_hit\""));
    }

    #[test]
    fn json_export_escapes_and_parses_shape() {
        let m = ServeMetrics::new();
        m.record(EventKind::Failed, "we\"ird\n", Some(0), "tab\there");
        let json = m.to_json();
        assert!(json.contains("\\\"ird\\n"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"queue_depth_highwater\": 0"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fault_counters_track_lifecycle_per_kind() {
        let m = ServeMetrics::new();
        m.record_fault_injected(FaultKind::CorruptBlock);
        m.record_fault_injected(FaultKind::CorruptBlock);
        m.record_fault_detected(FaultKind::CorruptBlock);
        m.record_fault_retried(FaultKind::CorruptBlock);
        m.record_fault_recovered(FaultKind::CorruptBlock);
        m.record_fault_injected(FaultKind::ClientStall);
        m.record_fault_evicted(FaultKind::ClientStall);
        let s = m.fault_stats();
        assert_eq!(
            s.kind(FaultKind::CorruptBlock),
            FaultKindStats {
                injected: 2,
                detected: 1,
                retried: 1,
                recovered: 1,
                evicted: 0
            }
        );
        assert_eq!(s.kind(FaultKind::ClientStall).evicted, 1);
        assert_eq!(s.kind(FaultKind::EpcPressure), FaultKindStats::default());
        assert_eq!(s.totals().injected, 3);
        let json = m.to_json();
        assert!(json.contains(
            "\"corrupt_block\": {\"injected\": 2, \"detected\": 1, \"retried\": 1, \
             \"recovered\": 1, \"evicted\": 0}"
        ));
        // Every kind appears in the export even when untouched.
        for kind in FaultKind::ALL {
            assert!(json.contains(&format!("\"{}\":", kind.name())), "{json}");
        }
    }

    #[test]
    fn store_counters_mirror_and_export() {
        let m = ServeMetrics::new();
        assert!(m.to_json().contains("\"store\": {\"enabled\": false,"));
        m.mark_store_enabled();
        m.record_store_hydrated(7);
        m.record_store_flushed(3);
        m.record_store_flushed(2);
        m.observe_flush_queue_depth(4);
        m.observe_flush_queue_depth(2);
        let stats = engarde_store::StoreStats {
            live_records: 9,
            stored_records: 12,
            segments: 3,
            appended_records: 5,
            compactions: 1,
            compaction_dropped: 3,
            recovery: engarde_store::RecoveryReport {
                segments_scanned: 3,
                garbage_segments: 1,
                lost_segments: 0,
                records_recovered: 7,
                superseded_records: 0,
                corrupt_records: 2,
                torn_tail_truncations: 1,
                bytes_discarded: 640,
            },
        };
        m.set_store_stats(&stats);
        // Idempotent: stores, not increments.
        m.set_store_stats(&stats);
        let s = m.store_stats();
        assert!(s.enabled);
        assert_eq!(s.hydrated, 7);
        assert_eq!(s.flushed, 5);
        assert_eq!(s.flush_queue_highwater, 4);
        assert_eq!(s.live_records, 9);
        assert_eq!(s.segments, 3);
        assert_eq!(s.compactions, 1);
        assert_eq!(s.records_recovered, 7);
        assert_eq!(s.torn_tail_truncations, 1);
        assert_eq!(s.corrupt_records, 2);
        assert_eq!(s.garbage_segments, 1);
        let json = m.to_json();
        assert!(json.contains(
            "\"store\": {\"enabled\": true, \"hydrated\": 7, \"flushed\": 5, \
             \"flush_queue_highwater\": 4, \"live_records\": 9, \"stored_records\": 12, \
             \"segments\": 3, \"compactions\": 1, \"recovery\": {\"records_recovered\": 7, \
             \"torn_tail_truncations\": 1, \"corrupt_records\": 2, \"garbage_segments\": 1, \
             \"lost_segments\": 0}}"
        ));
    }

    #[test]
    fn taint_counters_accumulate_and_export() {
        let m = ServeMetrics::new();
        let a = engarde_core::analysis::TaintStats {
            leaks_found: 2,
            tainted_branches: 1,
            scc_count: 4,
            fixpoint_iterations: 30,
            spill_cells: 6,
            weak_updates: 2,
            unresolved_store_sinks: 1,
            cycles_charged: 10_000,
        };
        let b = engarde_core::analysis::TaintStats {
            leaks_found: 0,
            tainted_branches: 0,
            scc_count: 3,
            fixpoint_iterations: 12,
            spill_cells: 4,
            weak_updates: 1,
            unresolved_store_sinks: 0,
            cycles_charged: 5_000,
        };
        m.record_taint(&a);
        m.record_taint(&b);
        let t = m.taint_stats();
        assert_eq!(t.sessions, 2);
        assert_eq!(t.leaks_found, 2);
        assert_eq!(t.tainted_branches, 1);
        assert_eq!(t.scc_count, 7);
        assert_eq!(t.fixpoint_iterations, 42);
        assert_eq!(t.spill_cells, 10);
        assert_eq!(t.weak_updates, 3);
        assert_eq!(t.unresolved_store_sinks, 1);
        assert_eq!(t.cycles_charged, 15_000);
        let json = m.to_json();
        assert!(json.contains(
            "\"taint\": {\"sessions\": 2, \"leaks_found\": 2, \"tainted_branches\": 1, \
             \"scc_count\": 7, \"fixpoint_iterations\": 42, \"spill_cells\": 10, \
             \"weak_updates\": 3, \"unresolved_store_sinks\": 1, \"cycles_charged\": 15000}"
        ));
        // The block is present (zeroed) even with no taint-backed
        // policies loaded.
        assert!(ServeMetrics::new()
            .to_json()
            .contains("\"taint\": {\"sessions\": 0,"));
    }

    #[test]
    fn shed_and_worker_death_events_bump_counters() {
        let m = ServeMetrics::new();
        m.record(EventKind::Shed, "s0", Some(1), "breaker open");
        m.record(EventKind::WorkerDied, "s1", Some(0), "fault: worker_death");
        m.record(
            EventKind::BreakerOpened,
            "",
            Some(1),
            "4 consecutive faults",
        );
        m.record(EventKind::BreakerClosed, "", Some(1), "clean probe");
        let c = m.counters();
        assert_eq!(c.shed, 1);
        assert_eq!(c.workers_died, 1);
        let json = m.to_json();
        assert!(json.contains("\"kind\": \"breaker_opened\""));
        assert!(json.contains("\"shed\": 1"));
    }

    #[test]
    fn poisoned_events_lock_is_recovered_not_propagated() {
        // A worker that panics while holding the events lock poisons
        // it; every later record/export must recover instead of
        // cascading the panic fleet-wide.
        let m = std::sync::Arc::new(ServeMetrics::new());
        let m2 = std::sync::Arc::clone(&m);
        let joined = std::thread::spawn(move || {
            let _guard = m2.events.lock().unwrap();
            panic!("worker died holding the events lock");
        })
        .join();
        assert!(joined.is_err(), "the poisoning thread must have panicked");
        assert!(m.events.is_poisoned());
        m.record(EventKind::Admitted, "after-poison", None, "");
        assert_eq!(m.events().len(), 1);
        assert_eq!(m.counters().admitted, 1);
        assert!(m.to_json().contains("after-poison"));
    }

    #[test]
    fn poisoned_latency_lock_is_recovered_not_propagated() {
        let m = std::sync::Arc::new(ServeMetrics::new());
        let m2 = std::sync::Arc::clone(&m);
        let joined = std::thread::spawn(move || {
            let _guard = m2.latency_cycles.lock().unwrap();
            panic!("worker died holding the latency lock");
        })
        .join();
        assert!(joined.is_err());
        assert!(m.latency_cycles.is_poisoned());
        m.record_timing(&Default::default(), 10, 25, 0);
        assert_eq!(m.latency_percentile(50), Some(25));
        assert!(m.to_json().contains("\"samples\": 1"));
    }

    #[test]
    fn highwater_is_monotonic() {
        let m = ServeMetrics::new();
        m.observe_queue_depth(3);
        m.observe_queue_depth(1);
        assert_eq!(m.counters().queue_depth_highwater, 3);
    }
}
