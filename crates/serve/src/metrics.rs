//! Built-in service observability: atomic counters, cycle/latency
//! accounting, and a structured event log — all in-tree, exportable as
//! JSON with no external dependencies.
//!
//! Counters are lock-free atomics so worker threads update them without
//! contention; latency samples and events take a short mutex only at
//! record time. Percentiles are computed at export.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What happened, for the structured event log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// Session accepted into the queue.
    Admitted,
    /// Session refused: queue full.
    RejectedBusy,
    /// Session started on a shard.
    Started,
    /// Transient failure; the session will be retried.
    Retried,
    /// Session evicted (stall or budget).
    Evicted,
    /// Session finished with a verdict.
    Completed,
    /// Session failed terminally.
    Failed,
    /// Session's verdict was replayed from the content-addressed cache.
    CacheHit,
    /// Service entered drain.
    DrainStarted,
}

impl EventKind {
    fn name(self) -> &'static str {
        match self {
            EventKind::Admitted => "admitted",
            EventKind::RejectedBusy => "rejected_busy",
            EventKind::Started => "started",
            EventKind::Retried => "retried",
            EventKind::Evicted => "evicted",
            EventKind::Completed => "completed",
            EventKind::Failed => "failed",
            EventKind::CacheHit => "cache_hit",
            EventKind::DrainStarted => "drain_started",
        }
    }
}

/// One structured log record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (assigned at record time).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The session's name (empty for service-wide events).
    pub session: String,
    /// Shard index, when known.
    pub shard: Option<usize>,
    /// Free-form detail (verdict, eviction reason, error).
    pub detail: String,
}

/// Per-stage accumulated model cycles across all completed sessions.
#[derive(Default)]
struct StageTotals {
    receive_decrypt: AtomicU64,
    disassembly: AtomicU64,
    policy_checking: AtomicU64,
    loading_relocation: AtomicU64,
}

/// Verdict-cache counters, mirrored from the cache's own
/// [`CacheStats`](engarde_core::cache::CacheStats) at drain/export time.
#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    cycles_saved: AtomicU64,
}

/// Service-wide metrics. One instance is shared (via `Arc`) between the
/// admission path, every worker, and the drain path.
#[derive(Default)]
pub struct ServeMetrics {
    admitted: AtomicU64,
    rejected_busy: AtomicU64,
    evicted: AtomicU64,
    completed: AtomicU64,
    compliant: AtomicU64,
    noncompliant: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    queue_depth_highwater: AtomicUsize,
    stage_cycles: StageTotals,
    cache: CacheCounters,
    total_cycles: AtomicU64,
    total_wall_nanos: AtomicU64,
    latency_cycles: Mutex<Vec<u64>>,
    events: Mutex<Vec<Event>>,
    seq: AtomicU64,
}

/// Counter snapshot, as plain numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CounterSnapshot {
    /// Sessions accepted into the queue.
    pub admitted: u64,
    /// Sessions refused with `Busy`.
    pub rejected_busy: u64,
    /// Sessions evicted mid-protocol.
    pub evicted: u64,
    /// Sessions that reached a verdict.
    pub completed: u64,
    /// ... of which compliant.
    pub compliant: u64,
    /// ... of which rejected by policy.
    pub noncompliant: u64,
    /// Sessions that failed terminally (non-eviction).
    pub failed: u64,
    /// Transient retries performed.
    pub retries: u64,
    /// Highest queue depth observed.
    pub queue_depth_highwater: usize,
    /// Verdict-cache probes that found a usable verdict.
    pub cache_hits: u64,
    /// Verdict-cache probes that found nothing.
    pub cache_misses: u64,
    /// Verdict-cache entries evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Verdict-cache entries inserted.
    pub cache_insertions: u64,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records an event and bumps the matching counter.
    pub fn record(&self, kind: EventKind, session: &str, shard: Option<usize>, detail: &str) {
        match kind {
            EventKind::Admitted => self.admitted.fetch_add(1, Ordering::Relaxed),
            EventKind::RejectedBusy => self.rejected_busy.fetch_add(1, Ordering::Relaxed),
            EventKind::Retried => self.retries.fetch_add(1, Ordering::Relaxed),
            EventKind::Evicted => self.evicted.fetch_add(1, Ordering::Relaxed),
            EventKind::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
            EventKind::Completed => self.completed.fetch_add(1, Ordering::Relaxed),
            // Cache-hit counters come from the cache itself (the
            // authoritative source) via `set_cache_stats`; the event is
            // log-only so per-session records and cache totals cannot
            // drift apart.
            EventKind::Started | EventKind::CacheHit | EventKind::DrainStarted => 0,
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock().expect("events lock");
        events.push(Event {
            seq,
            kind,
            session: session.to_string(),
            shard,
            detail: detail.to_string(),
        });
    }

    /// Records a completed session's verdict polarity.
    pub fn record_verdict(&self, compliant: bool) {
        if compliant {
            self.compliant.fetch_add(1, Ordering::Relaxed);
        } else {
            self.noncompliant.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a session's stage costs, total model cycles, end-to-end
    /// latency (model cycles), and wall time.
    pub fn record_timing(
        &self,
        stages: &engarde_core::provision::StageCycles,
        cycles: u64,
        latency_cycles: u64,
        wall_nanos: u64,
    ) {
        self.stage_cycles
            .receive_decrypt
            .fetch_add(stages.receive_decrypt, Ordering::Relaxed);
        self.stage_cycles
            .disassembly
            .fetch_add(stages.disassembly, Ordering::Relaxed);
        self.stage_cycles
            .policy_checking
            .fetch_add(stages.policy_checking, Ordering::Relaxed);
        self.stage_cycles
            .loading_relocation
            .fetch_add(stages.loading_relocation, Ordering::Relaxed);
        self.total_cycles.fetch_add(cycles, Ordering::Relaxed);
        self.total_wall_nanos
            .fetch_add(wall_nanos, Ordering::Relaxed);
        self.latency_cycles
            .lock()
            .expect("latency lock")
            .push(latency_cycles);
    }

    /// Raises the queue-depth high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_highwater
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Mirrors the verdict cache's cumulative counters into the metrics
    /// (the cache is the authoritative source; these are stores, not
    /// increments, so the call is idempotent).
    pub fn set_cache_stats(&self, stats: &engarde_core::cache::CacheStats) {
        self.cache.hits.store(stats.hits, Ordering::Relaxed);
        self.cache.misses.store(stats.misses, Ordering::Relaxed);
        self.cache
            .evictions
            .store(stats.evictions, Ordering::Relaxed);
        self.cache
            .insertions
            .store(stats.insertions, Ordering::Relaxed);
        self.cache
            .cycles_saved
            .store(stats.cycles_saved, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            compliant: self.compliant.load(Ordering::Relaxed),
            noncompliant: self.noncompliant.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            queue_depth_highwater: self.queue_depth_highwater.load(Ordering::Relaxed),
            cache_hits: self.cache.hits.load(Ordering::Relaxed),
            cache_misses: self.cache.misses.load(Ordering::Relaxed),
            cache_evictions: self.cache.evictions.load(Ordering::Relaxed),
            cache_insertions: self.cache.insertions.load(Ordering::Relaxed),
        }
    }

    /// Latency percentile in model cycles (`q` in 0..=100). `None` with
    /// no samples.
    pub fn latency_percentile(&self, q: u32) -> Option<u64> {
        let samples = self.latency_cycles.lock().expect("latency lock");
        percentile(&samples, q)
    }

    /// Accumulated model cycles across sessions.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles.load(Ordering::Relaxed)
    }

    /// Accumulated wall time across sessions (threaded mode only).
    pub fn total_wall_nanos(&self) -> u64 {
        self.total_wall_nanos.load(Ordering::Relaxed)
    }

    /// A copy of the event log, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        let mut events = self.events.lock().expect("events lock").clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Serializes counters, stage totals, latency percentiles, and the
    /// event log as a JSON object.
    pub fn to_json(&self) -> String {
        let c = self.counters();
        let samples = self.latency_cycles.lock().expect("latency lock").clone();
        let mut out = String::from("{\n");
        let counter_fields = [
            ("admitted", c.admitted),
            ("rejected_busy", c.rejected_busy),
            ("evicted", c.evicted),
            ("completed", c.completed),
            ("compliant", c.compliant),
            ("noncompliant", c.noncompliant),
            ("failed", c.failed),
            ("retries", c.retries),
            ("queue_depth_highwater", c.queue_depth_highwater as u64),
        ];
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in counter_fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"stage_cycles\": {{\"receive_decrypt\": {}, \"disassembly\": {}, \"policy_checking\": {}, \"loading_relocation\": {}}},\n",
            self.stage_cycles.receive_decrypt.load(Ordering::Relaxed),
            self.stage_cycles.disassembly.load(Ordering::Relaxed),
            self.stage_cycles.policy_checking.load(Ordering::Relaxed),
            self.stage_cycles.loading_relocation.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "  \"verdict_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"insertions\": {}, \"cycles_saved\": {}}},\n",
            c.cache_hits,
            c.cache_misses,
            c.cache_evictions,
            c.cache_insertions,
            self.cache.cycles_saved.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "  \"latency_cycles\": {{\"samples\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
            samples.len(),
            percentile(&samples, 50).unwrap_or(0),
            percentile(&samples, 99).unwrap_or(0),
            samples.iter().copied().max().unwrap_or(0),
        ));
        out.push_str(&format!(
            "  \"total_cycles\": {},\n  \"total_wall_nanos\": {},\n",
            self.total_cycles(),
            self.total_wall_nanos()
        ));
        out.push_str("  \"events\": [\n");
        let events = self.events();
        for (i, e) in events.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"kind\": \"{}\", \"session\": \"{}\", \"shard\": {}, \"detail\": \"{}\"}}{}\n",
                e.seq,
                e.kind.name(),
                json_escape(&e.session),
                e.shard.map_or("null".to_string(), |s| s.to_string()),
                json_escape(&e.detail),
                if i + 1 < events.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Nearest-rank percentile over unsorted samples.
fn percentile(samples: &[u64], q: u32) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q as usize * sorted.len()).div_ceil(100)).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_events() {
        let m = ServeMetrics::new();
        m.record(EventKind::Admitted, "s0", None, "");
        m.record(EventKind::Admitted, "s1", None, "");
        m.record(EventKind::RejectedBusy, "s2", None, "depth 4");
        m.record(EventKind::Completed, "s0", Some(1), "compliant");
        m.record_verdict(true);
        let c = m.counters();
        assert_eq!(c.admitted, 2);
        assert_eq!(c.rejected_busy, 1);
        assert_eq!(c.completed, 1);
        assert_eq!(c.compliant, 1);
        let events = m.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2].kind, EventKind::RejectedBusy);
        assert_eq!(events[3].shard, Some(1));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50), Some(50));
        assert_eq!(percentile(&samples, 99), Some(99));
        assert_eq!(percentile(&samples, 100), Some(100));
        assert_eq!(percentile(&[42], 50), Some(42));
        assert_eq!(percentile(&[], 50), None);
    }

    #[test]
    fn percentile_of_empty_samples_is_none_for_every_quantile() {
        for q in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[], q), None, "q={q}");
        }
    }

    #[test]
    fn percentile_q0_is_the_minimum() {
        // Nearest-rank with q=0 yields rank 0, which must clamp to the
        // first element, not index out of bounds.
        assert_eq!(percentile(&[30, 10, 20], 0), Some(10));
        assert_eq!(percentile(&[7], 0), Some(7));
    }

    #[test]
    fn percentile_q100_is_the_maximum() {
        assert_eq!(percentile(&[30, 10, 20], 100), Some(30));
        assert_eq!(percentile(&[7], 100), Some(7));
    }

    #[test]
    fn percentile_single_sample_is_that_sample_for_every_quantile() {
        for q in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[42], q), Some(42), "q={q}");
        }
    }

    #[test]
    fn percentile_two_samples_split_at_the_nearest_rank() {
        // rank = ceil(q·n/100) clamped to [1, n]: q≤50 → first, q>50 →
        // second.
        assert_eq!(percentile(&[10, 20], 50), Some(10));
        assert_eq!(percentile(&[10, 20], 51), Some(20));
    }

    #[test]
    fn cache_stats_are_mirrored_and_exported() {
        let m = ServeMetrics::new();
        let stats = engarde_core::cache::CacheStats {
            hits: 5,
            misses: 3,
            evictions: 1,
            insertions: 4,
            cycles_saved: 123_456,
        };
        m.set_cache_stats(&stats);
        // Idempotent: stores, not increments.
        m.set_cache_stats(&stats);
        let c = m.counters();
        assert_eq!(
            (
                c.cache_hits,
                c.cache_misses,
                c.cache_evictions,
                c.cache_insertions
            ),
            (5, 3, 1, 4)
        );
        let json = m.to_json();
        assert!(json.contains(
            "\"verdict_cache\": {\"hits\": 5, \"misses\": 3, \"evictions\": 1, \
             \"insertions\": 4, \"cycles_saved\": 123456}"
        ));
        m.record(EventKind::CacheHit, "tenant-1", Some(0), "verdict replayed");
        assert!(m.to_json().contains("\"kind\": \"cache_hit\""));
    }

    #[test]
    fn json_export_escapes_and_parses_shape() {
        let m = ServeMetrics::new();
        m.record(EventKind::Failed, "we\"ird\n", Some(0), "tab\there");
        let json = m.to_json();
        assert!(json.contains("\\\"ird\\n"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"queue_depth_highwater\": 0"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn highwater_is_monotonic() {
        let m = ServeMetrics::new();
        m.observe_queue_depth(3);
        m.observe_queue_depth(1);
        assert_eq!(m.counters().queue_depth_highwater, 3);
    }
}
