//! The service layer's error type.
//!
//! Protocol-order mistakes that used to be stringly-typed footguns
//! (deliver before the channel opens, inspect before the transfer
//! completes, inspect twice) are first-class variants here, as are the
//! service-level outcomes: admission rejection, eviction, and retry
//! exhaustion.

use engarde_core::EngardeError;
use std::error::Error;
use std::fmt;

/// Why a session was evicted by the service.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvictReason {
    /// The client stopped delivering before the manifest's page count
    /// was satisfied.
    ClientStalled,
    /// The session's delivery phase exceeded its cycle budget.
    DeliverBudgetExceeded,
    /// The whole session (attempts plus backoff) exceeded its
    /// end-to-end cycle budget.
    SessionBudgetExceeded,
}

impl fmt::Display for EvictReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictReason::ClientStalled => write!(f, "client stalled mid-transfer"),
            EvictReason::DeliverBudgetExceeded => write!(f, "delivery cycle budget exceeded"),
            EvictReason::SessionBudgetExceeded => write!(f, "session cycle budget exceeded"),
        }
    }
}

/// Any failure produced by the `engarde-serve` layer.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A session method was called in a phase that does not allow it —
    /// the typed replacement for protocol-order footguns.
    IllegalTransition {
        /// The session's current phase.
        phase: &'static str,
        /// The attempted action.
        action: &'static str,
    },
    /// Admission control refused the session: the queue is full.
    Busy {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The service is draining and accepts no new sessions.
    ShuttingDown,
    /// The service evicted the session.
    Evicted {
        /// Why.
        reason: EvictReason,
    },
    /// A transient failure persisted past the retry budget.
    RetriesExhausted {
        /// Attempts made (initial try included).
        attempts: u32,
        /// The final underlying error, rendered.
        last: String,
    },
    /// An underlying EnGarde failure.
    Engarde(EngardeError),
    /// A worker thread disappeared (panicked) mid-session.
    WorkerLost,
    /// Every worker in the pool is dead; the service cannot run any
    /// session. Returned typed from `submit` instead of hanging.
    PoolDead,
    /// The shard's circuit breaker is open: fault rates spiked and the
    /// shard is shedding load until its cooldown passes.
    LoadShed {
        /// The shedding shard.
        shard: usize,
    },
    /// A session phase that guarantees a channel key was entered
    /// without one — an internal invariant violation reported as a
    /// typed error instead of a panic.
    MissingSessionKey {
        /// The phase that should have held the key.
        phase: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::IllegalTransition { phase, action } => {
                write!(f, "illegal transition: cannot {action} while {phase}")
            }
            ServeError::Busy { queue_depth } => {
                write!(f, "service busy: queue depth {queue_depth}")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Evicted { reason } => write!(f, "session evicted: {reason}"),
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            ServeError::Engarde(e) => write!(f, "provisioning failure: {e}"),
            ServeError::WorkerLost => write!(f, "worker thread lost"),
            ServeError::PoolDead => write!(f, "worker pool is dead: no live workers"),
            ServeError::LoadShed { shard } => {
                write!(f, "shard {shard} is shedding load (circuit breaker open)")
            }
            ServeError::MissingSessionKey { phase } => {
                write!(f, "session in phase {phase} holds no channel key")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Engarde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngardeError> for ServeError {
    fn from(e: EngardeError) -> Self {
        ServeError::Engarde(e)
    }
}

/// Whether an error is transient EPC pressure worth retrying: the EPC
/// ran out of pages or the in-enclave working memory was exhausted.
pub fn is_transient(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Engarde(
            EngardeError::Sgx(engarde_sgx::SgxError::Epc(
                engarde_sgx::epc::EpcError::OutOfPages
            )) | EngardeError::OutOfEnclaveMemory { .. }
        )
    )
}

/// Whether a fresh attempt is worth making: transient resource
/// pressure, or a *transport* failure — a sealed block that failed its
/// MAC or arrived out of sequence. Transport damage is per-attempt (a
/// retry reseals the content from scratch), so a corrupted, truncated,
/// dropped, reordered, or duplicated delivery is recoverable; the
/// tampered bytes themselves can never reach the inspector.
pub fn is_retryable(e: &ServeError) -> bool {
    is_transient(e) || matches!(e, ServeError::Engarde(EngardeError::Crypto(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = ServeError::IllegalTransition {
            phase: "created",
            action: "inspect",
        };
        assert!(e.to_string().contains("cannot inspect while created"));
        assert!(ServeError::Busy { queue_depth: 7 }
            .to_string()
            .contains('7'));
        assert!(ServeError::Evicted {
            reason: EvictReason::ClientStalled
        }
        .to_string()
        .contains("stalled"));
    }

    #[test]
    fn transient_classification() {
        let epc = ServeError::Engarde(EngardeError::Sgx(engarde_sgx::SgxError::Epc(
            engarde_sgx::epc::EpcError::OutOfPages,
        )));
        assert!(is_transient(&epc));
        let oom = ServeError::Engarde(EngardeError::OutOfEnclaveMemory {
            what: "insn buffer",
        });
        assert!(is_transient(&oom));
        assert!(!is_transient(&ServeError::ShuttingDown));
        assert!(!is_transient(&ServeError::Engarde(
            EngardeError::Protocol { what: "x".into() }
        )));
    }
}
