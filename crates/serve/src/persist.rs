//! Persistence glue: how the service binds an [`engarde_store`]
//! verdict store to the fleet.
//!
//! The seal key is the SGX MRENCLAVE-policy sealing identity of the
//! EnGarde inspector itself: `EGETKEY(measurement(spec), label)` on the
//! fleet's *base* machine. Two consequences the warm-start tests pin:
//!
//! - A restarted fleet with the same machine configuration and the same
//!   agreed bootstrap spec derives the same key and hydrates every
//!   sealed verdict — re-admitting known binaries for probe cost only.
//! - A different inspector build (different bootstrap spec, so a
//!   different measurement) or a different machine (different fused
//!   seal key) derives a different key, so every segment fails header
//!   authentication and the store admits nothing. One inspector's
//!   verdicts can never be replayed under another inspector's identity.

use engarde_core::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde_sgx::machine::{MachineConfig, SgxMachine};
use engarde_store::SealKey;
use std::path::PathBuf;

/// The EGETKEY label under which the service seals its verdict store.
pub const STORE_SEAL_LABEL: &[u8] = b"ENGARDE-STORE-SEAL-V1";

/// Default LRU capacity for the fleet cache a store hydrates into when
/// the service config did not size one explicitly.
pub const DEFAULT_STORE_CACHE_CAPACITY: usize = 1024;

/// How the service persists verdicts across restarts.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding the sealed segment files.
    pub dir: PathBuf,
    /// The sealing key — derive it with [`store_seal_key`] so it is
    /// bound to the inspector's measurement.
    pub seal_key: SealKey,
    /// Dirty-queue depth that triggers a write-behind flush. The drain
    /// path always flushes whatever remains, so durability does not
    /// depend on the batch filling.
    pub flush_batch: usize,
    /// Records per on-disk segment before rotation.
    pub segment_max_records: usize,
    /// Run a compaction pass (drop superseded records, delete old
    /// segments) during drain.
    pub compact_on_drain: bool,
    /// Live-fraction auto-compaction threshold in per-mille, checked at
    /// segment rotation: compact once fewer than this many of every
    /// 1000 stored records are still live. `0` (the default) disables
    /// the trigger and keeps drain-time-only compaction.
    pub compact_live_per_mille: u16,
}

impl StoreConfig {
    /// A store at `dir` sealed under the inspector identity derived
    /// from `machine` and `spec`, with default batching.
    pub fn sealed_at(
        dir: impl Into<PathBuf>,
        machine: &MachineConfig,
        spec: &BootstrapSpec,
    ) -> Self {
        StoreConfig {
            dir: dir.into(),
            seal_key: store_seal_key(machine, spec),
            flush_batch: 8,
            segment_max_records: 256,
            compact_on_drain: false,
            compact_live_per_mille: 0,
        }
    }
}

/// Derives the store's [`SealKey`]: the key `EGETKEY` would hand an
/// initialized EnGarde enclave measuring `spec` at the default base, on
/// the fleet's base machine.
pub fn store_seal_key(machine: &MachineConfig, spec: &BootstrapSpec) -> SealKey {
    let mut m = SgxMachine::new(machine.clone());
    let measurement = spec.expected_measurement(DEFAULT_ENCLAVE_BASE);
    SealKey::new(m.egetkey_for_measurement(&measurement, STORE_SEAL_LABEL))
}

#[cfg(test)]
mod tests {
    use super::*;
    use engarde_core::loader::LoaderConfig;

    fn spec(client_region_pages: usize) -> BootstrapSpec {
        BootstrapSpec::new(
            "EnGarde-1.0",
            LoaderConfig::default(),
            &[],
            client_region_pages,
            512,
        )
    }

    #[test]
    fn seal_key_is_bound_to_machine_and_measurement() {
        let machine = MachineConfig::default();
        let k1 = store_seal_key(&machine, &spec(64));
        let k2 = store_seal_key(&machine, &spec(64));
        assert_eq!(k1, k2, "same machine + same spec: same key");

        let other_machine = MachineConfig {
            seed: machine.seed ^ 1,
            ..machine.clone()
        };
        assert_ne!(
            store_seal_key(&other_machine, &spec(64)),
            k1,
            "a different machine (different fused seal key) derives differently"
        );

        assert_ne!(
            store_seal_key(&machine, &spec(65)),
            k1,
            "a different inspector build (different measurement) derives differently"
        );
    }
}
