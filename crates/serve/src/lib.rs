//! # engarde-serve
//!
//! A concurrent multi-tenant provisioning service over the EnGarde
//! inspection stack: the paper's one-client protocol (attest → channel
//! → deliver → inspect → verdict), operated at cloud scale.
//!
//! The layers:
//!
//! - [`session`] — the per-tenant protocol as a typed state machine;
//!   illegal orderings (deliver before the channel opens, inspect before
//!   the transfer completes, double-inspect) are
//!   [`error::ServeError::IllegalTransition`] values, not stringly
//!   protocol errors.
//! - [`pool`] — shards: one [`CloudProvider`]-on-its-own-machine per
//!   shard, running sessions with eviction (stalled clients, delivery
//!   cycle budgets), retry-with-budget under transient EPC pressure, and
//!   EPC recycling via enclave teardown.
//! - [`service`] — admission control (bounded queue, `Busy`
//!   backpressure, optional same-binary batch admission) in front of
//!   the fleet, scheduled by per-worker deques with work stealing: each
//!   worker owns a deque of session items, pops its own front, and
//!   steals a peer's oldest item when idle — a dead worker's deque is
//!   drained by peers, never lost. Two backends: a deterministic
//!   virtual-time mode driven purely by the SGX cost model (steal order
//!   a pure function of seed and tick; bit-reproducible — the headline
//!   measurement) and a real `std::thread` worker pool for wall-clock
//!   numbers.
//! - [`metrics`] — in-tree atomic counters, latency percentiles, and a
//!   structured event log, exportable as JSON with zero dependencies.
//! - [`faults`] — deterministic fault injection: a seeded plan maps
//!   every arrival index to at most one fault (block corruption /
//!   truncation / drop / reorder / duplication, manifest flips, key
//!   mismatch, client stalls, EPC-pressure spikes, worker death). The
//!   invariant the fault tests enforce: every injected fault yields a
//!   typed error or clean rejection — never a panic, never a hang, and
//!   never a signed `PASS` — and a fault-free run with the layer
//!   enabled is bit-identical to one without it.
//! - [`persist`] — the sealed, crash-safe verdict store
//!   ([`engarde_store`]) bound to the fleet: the seal key is the
//!   inspector's own MRENCLAVE sealing identity, the service hydrates
//!   its cache from the store at warm start (known binaries re-admit
//!   for probe cost only), and dirty verdicts are flushed write-behind
//!   with the cost charged to virtual time. Store damage — torn
//!   writes, bit flips, lost segments — is injectable through the
//!   fault plan and recovers to the longest authenticated prefix.
//! - [`regimes`] — glue from the workload traffic generator to
//!   submittable session requests.
//!
//! # Examples
//!
//! ```
//! use engarde_serve::regimes;
//! use engarde_serve::service::{ProvisioningService, SchedMode, ServiceConfig};
//! use engarde_workloads::traffic::{mixed_traffic, TrafficSpec};
//! use std::sync::Arc;
//!
//! let musl = Arc::new(regimes::musl_hashes());
//! let traffic = mixed_traffic(&TrafficSpec {
//!     sessions: 2,
//!     scale_percent: 5,
//!     adversarial_every: 2,
//!     ..TrafficSpec::default()
//! });
//! let mut svc = ProvisioningService::start(ServiceConfig {
//!     shards: 2,
//!     mode: SchedMode::VirtualTime { arrival_gap: 1_000_000 },
//!     ..ServiceConfig::default()
//! });
//! for item in &traffic {
//!     let _ = svc.submit(regimes::request_for(item, &musl));
//! }
//! let result = svc.drain();
//! assert_eq!(result.reports.len(), 2);
//! ```
//!
//! [`CloudProvider`]: engarde_core::provider::CloudProvider

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod faults;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod regimes;
pub mod service;
pub mod session;

pub use error::{EvictReason, ServeError};
pub use faults::{FaultDirective, FaultKind, FaultMix, FaultPlan};
pub use metrics::ServeMetrics;
pub use persist::{store_seal_key, StoreConfig};
pub use pool::{BatchPolicy, SessionOutcome, SessionReport, SessionRunConfig, Shard};
pub use service::{ProvisioningService, SchedMode, ServiceConfig, ServiceResult};
pub use session::{PolicyFactory, SessionFsm, SessionPhase, SessionRequest};
