//! Integration tests for the provisioning service: typed protocol
//! transitions, deterministic virtual-time scheduling, eviction with
//! EPC recycling, admission backpressure, threaded workers, and
//! retry-under-EPC-pressure with reclamation.

use engarde_core::provider::CloudProvider;
use engarde_serve::pool::SessionOutcome;
use engarde_serve::service::{ProvisioningService, SchedMode, ServiceConfig};
use engarde_serve::session::SessionFsm;
use engarde_serve::{regimes, ServeError, SessionRunConfig};
use engarde_sgx::instr::SgxVersion;
use engarde_sgx::machine::MachineConfig;
use engarde_workloads::traffic::{
    mixed_traffic, repeated_binary_traffic, ExpectedOutcome, TrafficSpec,
};
use std::collections::HashMap;
use std::sync::Arc;

fn machine(seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 4_096,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    }
}

fn musl() -> Arc<HashMap<String, engarde_crypto::sha256::Digest>> {
    Arc::new(regimes::musl_hashes())
}

fn compliant_requests(n: usize, seed: u64) -> Vec<engarde_serve::SessionRequest> {
    let musl = musl();
    mixed_traffic(&TrafficSpec {
        sessions: n,
        scale_percent: 3,
        adversarial_every: 0,
        stall_every: 0,
        seed,
    })
    .iter()
    .map(|item| regimes::request_for(item, &musl))
    .collect()
}

#[test]
fn fsm_rejects_illegal_transitions_with_typed_errors() {
    let mut provider = CloudProvider::new(machine(0xF5A));
    let req = compliant_requests(1, 0xF5A).remove(0);
    let mut fsm = SessionFsm::create(&mut provider, &req).expect("create");

    // Channel and delivery before attestation are refused up front.
    assert!(matches!(
        fsm.open_channel(&mut provider),
        Err(ServeError::IllegalTransition {
            phase: "created",
            action: "open channel"
        })
    ));
    assert!(matches!(
        fsm.content_blocks(),
        Err(ServeError::IllegalTransition {
            phase: "created",
            ..
        })
    ));

    fsm.attest(&mut provider).expect("attest");
    // Double attestation is a typed error too.
    assert!(matches!(
        fsm.attest(&mut provider),
        Err(ServeError::IllegalTransition {
            phase: "attested",
            action: "attest"
        })
    ));
    // Inspection before the transfer even starts.
    assert!(matches!(
        fsm.inspect(&mut provider),
        Err(ServeError::IllegalTransition {
            phase: "attested",
            action: "inspect"
        })
    ));

    fsm.open_channel(&mut provider).expect("channel");
    let blocks = fsm.content_blocks().expect("blocks");
    assert!(blocks.len() > 2);
    fsm.deliver(&mut provider, &blocks[0]).expect("deliver");
    // Inspect mid-delivery: refused before the provider is touched.
    assert!(matches!(
        fsm.inspect(&mut provider),
        Err(ServeError::IllegalTransition {
            phase: "delivering",
            action: "inspect"
        })
    ));
    for block in &blocks[1..] {
        fsm.deliver(&mut provider, block).expect("deliver");
    }
    let verdict = fsm.inspect(&mut provider).expect("inspect");
    assert!(verdict.view.compliant);
    assert!(verdict.client_verified);
    // Double-inspection is refused: the first one finished the session.
    assert!(matches!(
        fsm.inspect(&mut provider),
        Err(ServeError::IllegalTransition {
            phase: "inspected",
            action: "inspect"
        })
    ));
    // Late delivery after inspection is likewise typed.
    assert!(matches!(
        fsm.deliver(&mut provider, &blocks[0]),
        Err(ServeError::IllegalTransition {
            phase: "inspected",
            action: "deliver content"
        })
    ));
}

fn run_virtual(seed: u64) -> engarde_serve::ServiceResult {
    let musl = musl();
    let traffic = mixed_traffic(&TrafficSpec {
        sessions: 6,
        scale_percent: 3,
        adversarial_every: 3,
        stall_every: 0,
        seed,
    });
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_000_000,
        },
        machine: machine(seed),
        queue_capacity: 16,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: None,
        store: None,
        batch: None,
        steal: true,
    });
    for item in &traffic {
        svc.submit(regimes::request_for(item, &musl))
            .expect("admit");
    }
    svc.drain()
}

#[test]
fn virtual_time_mode_is_bit_reproducible() {
    let a = run_virtual(0xD37);
    let b = run_virtual(0xD37);
    assert_eq!(a.reports.len(), 6);
    assert_eq!(a.makespan_cycles, b.makespan_cycles);
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.shard, y.shard);
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.cycles, y.cycles, "{}: cycle totals must match", x.name);
        assert_eq!(x.latency_cycles, y.latency_cycles);
        assert_eq!(
            x.verdict, y.verdict,
            "{}: verdicts must be identical",
            x.name
        );
        assert_eq!(x.measurement, y.measurement);
    }
    // The mix contains both polarities and every verdict is client-valid.
    assert!(a
        .reports
        .iter()
        .any(|r| r.outcome == SessionOutcome::Compliant));
    assert!(a
        .reports
        .iter()
        .any(|r| r.outcome == SessionOutcome::NonCompliant));
    assert!(a
        .reports
        .iter()
        .filter(|r| r.reached_verdict())
        .all(|r| r.client_verified));
}

fn run_cached_fleet(seed: u64) -> engarde_serve::ServiceResult {
    let musl = musl();
    let traffic = repeated_binary_traffic(6, 3, seed);
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_000_000,
        },
        machine: machine(seed),
        queue_capacity: 16,
        run: SessionRunConfig::default(),
        verdict_cache: Some(16),
        faults: None,
        store: None,
        batch: None,
        steal: true,
    });
    for item in &traffic {
        svc.submit(regimes::request_for(item, &musl))
            .expect("admit");
    }
    svc.drain()
}

#[test]
fn verdict_cache_is_shared_across_shards_and_stays_reproducible() {
    let a = run_cached_fleet(0xCAC4E);
    let b = run_cached_fleet(0xCAC4E);
    // One fleet-wide cache: the first session inserts, every later
    // session replays — including the ones scheduled on the other shard.
    let m = a.metrics.counters();
    assert_eq!(m.cache_misses, 1);
    assert_eq!(m.cache_hits, 5);
    assert_eq!(m.cache_insertions, 1);
    assert_eq!(m.cache_evictions, 0);
    let hits: Vec<_> = a.reports.iter().filter(|r| r.cache_hit).collect();
    assert_eq!(hits.len(), 5);
    let hit_shards: std::collections::BTreeSet<usize> = hits.iter().map(|r| r.shard).collect();
    assert!(
        hit_shards.len() > 1,
        "hits must land on more than one shard, got {hit_shards:?}"
    );
    // Caching must not cost virtual-time determinism: repeat runs are
    // bit-identical down to cycle counts and verdict bytes.
    assert_eq!(a.makespan_cycles, b.makespan_cycles);
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.cache_hit, y.cache_hit, "{}", x.name);
        assert_eq!(x.cycles, y.cycles, "{}", x.name);
        assert_eq!(x.verdict, y.verdict, "{}", x.name);
    }
    // Every session — cached or not — reaches a client-valid verdict.
    assert!(a
        .reports
        .iter()
        .all(|r| r.outcome == SessionOutcome::Compliant));
    assert!(a.reports.iter().all(|r| r.client_verified));
}

#[test]
fn stalled_client_is_evicted_and_epc_recycled() {
    let musl = musl();
    let traffic = mixed_traffic(&TrafficSpec {
        sessions: 1,
        scale_percent: 3,
        adversarial_every: 0,
        stall_every: 1,
        seed: 0xEE1,
    });
    assert_eq!(traffic[0].expected, ExpectedOutcome::Evicted);
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 1,
        machine: machine(0xEE1),
        ..ServiceConfig::default()
    });
    svc.submit(regimes::request_for(&traffic[0], &musl))
        .expect("admit");
    let result = svc.drain();
    assert!(matches!(
        result.reports[0].outcome,
        SessionOutcome::Evicted {
            reason: engarde_serve::EvictReason::ClientStalled
        }
    ));
    let m = result.metrics.counters();
    assert_eq!(m.evicted, 1);
    assert_eq!(m.completed, 0);
    // Eviction tears the enclave down: no sessions, no EPC pages held.
    let shard = &result.shards[0];
    assert_eq!(shard.provider().session_count(), 0);
    assert_eq!(shard.provider().host().machine().epc_used_pages(), 0);
}

#[test]
fn admission_control_rejects_when_queue_is_full() {
    let musl = musl();
    let traffic = mixed_traffic(&TrafficSpec {
        sessions: 4,
        scale_percent: 3,
        adversarial_every: 0,
        stall_every: 0,
        seed: 0xB5,
    });
    // One shard, one queue slot, arrivals every cycle: while session 0
    // runs (millions of cycles), session 1 takes the only waiting slot
    // and sessions 2 and 3 must bounce with `Busy`.
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 1,
        mode: SchedMode::VirtualTime { arrival_gap: 1 },
        machine: machine(0xB5),
        queue_capacity: 1,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: None,
        store: None,
        batch: None,
        steal: true,
    });
    let mut rejected = 0;
    for item in &traffic {
        match svc.submit(regimes::request_for(item, &musl)) {
            Ok(()) => {}
            Err(ServeError::Busy { queue_depth }) => {
                assert!(queue_depth >= 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(rejected, 2, "two of four arrivals must bounce");
    let result = svc.drain();
    let m = result.metrics.counters();
    assert_eq!(m.admitted, 2);
    assert_eq!(m.rejected_busy, 2);
    assert_eq!(m.queue_depth_highwater, 1);
    assert_eq!(result.reports.len(), 2);
}

#[test]
fn threaded_mode_completes_all_sessions() {
    let musl = musl();
    let traffic = mixed_traffic(&TrafficSpec {
        sessions: 3,
        scale_percent: 3,
        adversarial_every: 0,
        stall_every: 0,
        seed: 0x7E4,
    });
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::Threaded,
        machine: machine(0x7E4),
        queue_capacity: 8,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: None,
        store: None,
        batch: None,
        steal: true,
    });
    for item in &traffic {
        svc.submit(regimes::request_for(item, &musl))
            .expect("admit");
    }
    let result = svc.drain();
    assert_eq!(result.reports.len(), 3);
    assert!(result.reports.iter().all(|r| r.reached_verdict()));
    assert!(result.reports.iter().all(|r| r.client_verified));
    assert!(result.makespan_cycles > 0);
    assert!(result.wall_nanos > 0);
    let m = result.metrics.counters();
    assert_eq!(m.admitted, 3);
    assert_eq!(m.completed, 3);
    // Submission after drain is refused.
}

#[test]
fn transient_epc_pressure_is_retried_with_reclamation() {
    // Stage 1: measure how many EPC pages one retained session occupies.
    let probe_cfg = SessionRunConfig {
        release_enclaves: false,
        ..SessionRunConfig::default()
    };
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 1,
        machine: machine(0xEC0),
        run: probe_cfg.clone(),
        ..ServiceConfig::default()
    });
    let reqs = compliant_requests(2, 0xEC0);
    svc.submit(reqs[0].clone()).expect("admit probe");
    let result = svc.drain();
    assert_eq!(result.reports[0].outcome, SessionOutcome::Compliant);
    let used = result.shards[0]
        .provider()
        .host()
        .machine()
        .epc_used_pages();
    assert!(used > 0, "retained enclave must hold EPC pages");

    // Stage 2: an EPC that fits one enclave but not two. The second
    // session hits OutOfPages, the retry path reclaims the retained
    // enclave, and both sessions still reach verdicts.
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 1,
        machine: MachineConfig {
            epc_pages: used + used / 2,
            ..machine(0xEC0)
        },
        run: probe_cfg,
        ..ServiceConfig::default()
    });
    for req in &reqs {
        svc.submit(req.clone()).expect("admit");
    }
    let result = svc.drain();
    assert!(result
        .reports
        .iter()
        .all(|r| r.outcome == SessionOutcome::Compliant));
    let m = result.metrics.counters();
    assert!(m.retries >= 1, "EPC pressure must trigger a retry");
    assert!(result.reports[1].retries >= 1);
}

#[test]
fn killed_worker_yields_typed_error_not_hang() {
    // One worker, and a fault plan that kills it on the first session.
    // Submission after the death must fail with a typed `PoolDead` —
    // not hang on a condvar nobody will ever signal — and drain must
    // still return, with typed reports for anything left behind.
    let reqs = compliant_requests(2, 0xDEAD);
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 1,
        mode: SchedMode::Threaded,
        machine: machine(0xDEAD),
        queue_capacity: 8,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: Some(engarde_serve::FaultPlan {
            seed: 7,
            mix: engarde_serve::FaultMix::only(engarde_serve::FaultKind::WorkerDeath, 1000),
        }),
        store: None,
        batch: None,
        steal: true,
    });
    svc.submit(reqs[0].clone())
        .expect("admit the doomed session");

    // The worker dies after reporting; wait for the liveness counter
    // (bounded — the drop guard runs even on panic exits).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while svc.live_workers() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "worker death was never detected"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Regression: this call used to enqueue onto a dead pool and the
    // caller would wait forever for a report. Now it is a typed error.
    match svc.submit(reqs[1].clone()) {
        Err(ServeError::PoolDead) => {}
        other => panic!("expected PoolDead, got {other:?}"),
    }

    let result = svc.drain();
    assert_eq!(result.reports.len(), 1);
    assert!(
        matches!(&result.reports[0].outcome, SessionOutcome::Failed { error } if error.contains("worker")),
        "the killed session must surface a typed failure: {:?}",
        result.reports[0].outcome
    );
    let m = result.metrics.counters();
    assert_eq!(m.workers_died, 1);
    assert_eq!(m.compliant, 0, "a dead worker must never sign a PASS");
}

#[test]
fn virtual_fleet_with_all_shards_dead_refuses_typed() {
    let reqs = compliant_requests(3, 0xD1E);
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 1,
        machine: machine(0xD1E),
        faults: Some(engarde_serve::FaultPlan {
            seed: 3,
            mix: engarde_serve::FaultMix::only(engarde_serve::FaultKind::WorkerDeath, 1000),
        }),
        ..ServiceConfig::default()
    });
    svc.submit(reqs[0].clone()).expect("first session admitted");
    assert_eq!(svc.live_workers(), 0);
    assert!(matches!(
        svc.submit(reqs[1].clone()),
        Err(ServeError::PoolDead)
    ));
    let result = svc.drain();
    assert_eq!(result.reports.len(), 1);
    assert!(matches!(
        result.reports[0].outcome,
        SessionOutcome::Failed { .. }
    ));
}

fn run_same_binary_fleet(
    seed: u64,
    batch: Option<engarde_serve::BatchPolicy>,
    verdict_cache: Option<usize>,
) -> engarde_serve::ServiceResult {
    let musl = musl();
    let traffic = repeated_binary_traffic(8, 3, seed);
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 1,
        mode: SchedMode::VirtualTime { arrival_gap: 1_000 },
        machine: machine(seed),
        queue_capacity: 16,
        run: SessionRunConfig::default(),
        verdict_cache,
        faults: None,
        store: None,
        batch,
        steal: true,
    });
    for item in &traffic {
        svc.submit(regimes::request_for(item, &musl))
            .expect("admit");
    }
    svc.drain()
}

#[test]
fn batch_admission_amortizes_one_inspection_across_same_key_followers() {
    let policy = engarde_serve::BatchPolicy::default();
    let batched = run_same_binary_fleet(0xBA7C4, Some(policy), Some(16));

    // Arrivals land every 1k cycles while a session costs millions:
    // session 0 is already running when session 1 arrives, so sessions
    // 1..=7 coalesce into a single same-admission-key batch item.
    let sched = batched.metrics.sched_stats();
    assert_eq!(sched.batches, 1, "one open item must absorb the tail");
    assert_eq!(sched.batched_sessions, 6, "six followers joined it");
    assert_eq!(sched.batch_size_highwater, 7);

    // The leader pays the one real inspection; every follower replays
    // the shared verdict for probe cost.
    let m = batched.metrics.counters();
    assert_eq!(m.cache_misses, 1);
    assert_eq!(m.cache_hits, 7);
    assert!(batched
        .reports
        .iter()
        .all(|r| r.outcome == SessionOutcome::Compliant && r.client_verified));

    // Batching changes scheduling, never verdict content: the
    // verdict-only fingerprint matches a run with batching off.
    let unbatched = run_same_binary_fleet(0xBA7C4, None, Some(16));
    assert_eq!(
        batched.verdict_fingerprint(),
        unbatched.verdict_fingerprint()
    );

    // And the amortization is real: against a fleet that inspects every
    // session from scratch (no cache to share), the batched run's
    // makespan collapses.
    let from_scratch = run_same_binary_fleet(0xBA7C4, None, None);
    assert!(
        batched.makespan_cycles * 2 < from_scratch.makespan_cycles,
        "batched {} vs from-scratch {}: followers must not pay full inspection",
        batched.makespan_cycles,
        from_scratch.makespan_cycles
    );

    // Bit-reproducible, like every virtual-time schedule.
    let replay = run_same_binary_fleet(0xBA7C4, Some(policy), Some(16));
    assert_eq!(batched.fingerprint(), replay.fingerprint());
}

fn run_skewed_fleet(seed: u64, steal: bool) -> engarde_serve::ServiceResult {
    let reqs = compliant_requests(12, seed);
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 4,
        mode: SchedMode::VirtualTime {
            arrival_gap: 500_000,
        },
        machine: machine(seed),
        queue_capacity: 32,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: None,
        store: None,
        batch: None,
        steal,
    });
    for mut req in reqs {
        // Every tenant hints the same home shard: the hot-shard skew
        // the work-stealing scheduler exists to absorb.
        req.shard_hint = Some(0);
        svc.submit(req).expect("admit");
    }
    svc.drain()
}

#[test]
fn skewed_fleet_spreads_hot_shard_load_by_stealing() {
    let stealing = run_skewed_fleet(0x5E3A, true);
    let sched = stealing.metrics.sched_stats();
    assert!(sched.steals > 0, "idle peers must steal from the hot deque");
    let shards_used: std::collections::BTreeSet<usize> =
        stealing.reports.iter().map(|r| r.shard).collect();
    assert!(
        shards_used.len() > 1,
        "hinted-home sessions must spill to idle peers, got {shards_used:?}"
    );
    assert!(stealing
        .reports
        .iter()
        .all(|r| r.outcome == SessionOutcome::Compliant && r.client_verified));

    // The steal schedule is a pure function of the seeds.
    let replay = run_skewed_fleet(0x5E3A, true);
    assert_eq!(stealing.fingerprint(), replay.fingerprint());

    // Stealing off: the hint pins everything to shard 0 and the other
    // three workers idle — same verdicts, but the makespan balloons.
    let pinned = run_skewed_fleet(0x5E3A, false);
    assert_eq!(pinned.metrics.sched_stats().steals, 0);
    assert!(pinned.reports.iter().all(|r| r.shard == 0));
    assert_eq!(stealing.verdict_fingerprint(), pinned.verdict_fingerprint());
    assert!(
        pinned.makespan_cycles >= 2 * stealing.makespan_cycles,
        "pinned {} vs stealing {}: a hot shard without stealing must \
         serialize the fleet",
        pinned.makespan_cycles,
        stealing.makespan_cycles
    );
}
