//! Sealed, crash-safe persistent verdict store.
//!
//! The content-addressed verdict cache (`engarde_core::cache`) dies
//! with its process: a restarted fleet re-pays full disassembly +
//! policy checking for every binary it has already judged. This crate
//! persists verdicts to an append-only, segment-rotated log on
//! `std::fs`, sealed with an SGX-style sealing key, so a warm-started
//! fleet hydrates its cache from disk and re-admits known binaries for
//! probe cost only.
//!
//! # Sealing
//!
//! The caller supplies one 32-byte [`SealKey`] — in the serve stack it
//! comes from `SgxMachine::egetkey_for_measurement` keyed to the
//! EnGarde inspector's *measurement*, so a different inspector build
//! (different policy set, different loader) derives a different key
//! and cannot replay this store's verdicts. From the seal key the
//! store derives two independent subkeys (HMAC-SHA256 with distinct
//! labels): an AES-256-CTR encryption key and a MAC key. Every record
//! is encrypted (no plaintext verdict bytes ever reach disk) and
//! authenticated (HMAC-SHA256 over the segment index, sequence number,
//! length, and ciphertext), and every segment carries an authenticated
//! header. Nothing unauthenticated is ever admitted.
//!
//! # Crash safety
//!
//! Recovery ([`VerdictStore::open`]) is panic-free and lossless-prefix:
//! each segment is scanned record by record and the scan stops at the
//! first frame that fails its length or MAC check — the longest
//! *authenticated* prefix survives, the torn or corrupt tail is
//! truncated, and a segment whose header fails authentication is
//! skipped wholesale. Every repair is a typed counter in the
//! [`RecoveryReport`], never a crash. A [`VerdictStore::compact`] pass
//! rewrites the live (last-write-wins) records into fresh segments
//! under the same keying and deletes the old files.

pub mod chaos;
mod format;
mod store;

pub use format::{SealKey, MAX_RECORD_LEN, SEGMENT_HEADER_LEN};
pub use store::{CompactionReport, RecoveryReport, StoreOptions, StoreStats, VerdictStore};

/// Native cycles the service charges virtual time per record flushed
/// through the write-behind queue (seal + MAC + append).
pub const STORE_FLUSH_PER_RECORD: u64 = 3_000;

/// Native cycles the service charges virtual time per record hydrated
/// into the in-memory cache at warm start (read + MAC verify + open +
/// decode).
pub const STORE_HYDRATE_PER_RECORD: u64 = 2_500;

/// Typed store failure. Recovery findings (torn tails, corrupt
/// records, garbage segments) are *not* errors — they are counted in
/// [`RecoveryReport`]; this type covers I/O failures and misuse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What the store was doing (`"open segment"`, `"append"`, …).
        op: &'static str,
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
    },
    /// The store directory path exists but is not a directory.
    NotADirectory,
}

impl StoreError {
    pub(crate) fn io(op: &'static str, err: &std::io::Error) -> Self {
        StoreError::Io {
            op,
            kind: err.kind(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, kind } => write!(f, "store I/O failure during {op}: {kind}"),
            StoreError::NotADirectory => write!(f, "store path exists but is not a directory"),
        }
    }
}

impl std::error::Error for StoreError {}
