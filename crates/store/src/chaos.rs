//! Deterministic store-corruption helpers for fault injection.
//!
//! The serve layer's fault plan (`engarde_serve::faults`) is a pure
//! function of a seed and an arrival index; these helpers turn its
//! numeric picks into filesystem damage the same way every run: the
//! same picks against the same store bytes always corrupt the same
//! offsets. Each helper returns what it did (or `None` when the store
//! has nothing to damage yet), so callers can count real injections.
//!
//! The helpers parse record framing (the *unauthenticated* length
//! fields) only to aim the damage — authenticity decisions remain the
//! recovery scan's alone.

use crate::format::{MAC_LEN, RECORD_FRAME_LEN, SEGMENT_HEADER_LEN};
use crate::store::segment_files;
use crate::StoreError;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

/// What a chaos helper did to the store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChaosOutcome {
    /// The damaged segment file.
    pub path: PathBuf,
    /// Human-readable description of the damage.
    pub detail: String,
    /// Whether a recovery scan is guaranteed to observe the damage.
    /// (Deleting the final segment, for instance, is silent: the
    /// remaining segments still form a contiguous authenticated
    /// prefix.)
    pub detectable: bool,
}

/// Byte ranges `[start, end)` of the record frames in a segment file,
/// walked via the clear length fields. Stops at the first frame whose
/// claimed extent leaves the file.
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    while offset + RECORD_FRAME_LEN <= bytes.len() {
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[offset..offset + 4]);
        let total = RECORD_FRAME_LEN + u32::from_le_bytes(len4) as usize + MAC_LEN;
        let end = offset.saturating_add(total);
        if end > bytes.len() {
            break;
        }
        spans.push((offset, end));
        offset = end;
    }
    spans
}

/// Simulates a torn write: truncates the last record of the
/// highest-index segment strictly mid-frame, the way a crash between
/// `write` and the platter leaves a tail. Returns `None` when no
/// segment holds a record.
///
/// # Errors
///
/// Only on I/O failure.
pub fn torn_write(dir: &Path, pick: u64) -> Result<Option<ChaosOutcome>, StoreError> {
    let segments = segment_files(dir)?;
    for (_, path) in segments.iter().rev() {
        let bytes = fs::read(path).map_err(|e| StoreError::io("chaos read", &e))?;
        let spans = record_spans(&bytes);
        if let Some(&(start, end)) = spans.last() {
            // Cut strictly inside the frame: at least one byte kept,
            // at least one byte removed.
            let keep = start + 1 + (pick as usize % (end - start - 1));
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| StoreError::io("chaos open", &e))?;
            file.set_len(keep as u64)
                .map_err(|e| StoreError::io("chaos truncate", &e))?;
            return Ok(Some(ChaosOutcome {
                path: path.clone(),
                detail: format!("torn write: truncated to {keep} of {} bytes", bytes.len()),
                detectable: true,
            }));
        }
    }
    Ok(None)
}

/// Flips one bit inside a sealed record (frame, ciphertext, or MAC) of
/// a deterministically-picked segment. Returns `None` when no segment
/// holds a record.
///
/// # Errors
///
/// Only on I/O failure.
pub fn flip_bit(dir: &Path, pick: u64, bit: u8) -> Result<Option<ChaosOutcome>, StoreError> {
    type LoadedSegment<'a> = (&'a PathBuf, Vec<u8>, Vec<(usize, usize)>);
    let segments = segment_files(dir)?;
    let with_records: Vec<LoadedSegment> = segments
        .iter()
        .map(|(_, path)| {
            let bytes = fs::read(path).map_err(|e| StoreError::io("chaos read", &e))?;
            let spans = record_spans(&bytes);
            Ok((path, bytes, spans))
        })
        .collect::<Result<Vec<_>, StoreError>>()?
        .into_iter()
        .filter(|(_, _, spans)| !spans.is_empty())
        .collect();
    if with_records.is_empty() {
        return Ok(None);
    }
    let (path, mut bytes, spans) = {
        let (p, b, s) = &with_records[pick as usize % with_records.len()];
        ((*p).clone(), b.clone(), s.clone())
    };
    let (first, _) = spans[0];
    let (_, last) = spans[spans.len() - 1];
    let region = last - first;
    let offset = first + (pick as usize / 7) % region;
    bytes[offset] ^= 1 << (bit % 8);
    fs::write(&path, &bytes).map_err(|e| StoreError::io("chaos write", &e))?;
    Ok(Some(ChaosOutcome {
        path,
        detail: format!("bit flip: offset {offset}, bit {}", bit % 8),
        detectable: true,
    }))
}

/// Deletes one segment file, preferring an *interior* one so the loss
/// is observable as an index gap (present segments cover `min..=max`
/// contiguously; a lost first or final segment is indistinguishable
/// from a smaller store). Returns `None` when the store has no
/// segments.
///
/// # Errors
///
/// Only on I/O failure.
pub fn lose_segment(dir: &Path, pick: u64) -> Result<Option<ChaosOutcome>, StoreError> {
    let segments = segment_files(dir)?;
    if segments.is_empty() {
        return Ok(None);
    }
    let (index, path, detectable) = if segments.len() >= 3 {
        let (index, path) = &segments[1 + pick as usize % (segments.len() - 2)];
        (*index, path.clone(), true)
    } else {
        let (index, path) = &segments[pick as usize % segments.len()];
        (*index, path.clone(), false)
    };
    fs::remove_file(&path).map_err(|e| StoreError::io("chaos remove", &e))?;
    Ok(Some(ChaosOutcome {
        path,
        detail: format!("lost segment {index}"),
        detectable,
    }))
}

/// Sorted segment file paths (exposed for tests asserting on-disk
/// properties, e.g. that no plaintext verdict bytes ever reach disk).
///
/// # Errors
///
/// Only on I/O failure.
pub fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    Ok(segment_files(dir)?.into_iter().map(|(_, p)| p).collect())
}
