//! On-disk byte format: segment headers and sealed records.
//!
//! ```text
//! segment file  = header ‖ record*
//! header        = magic "ENGSTOR1" (8) ‖ segment index u64 LE (8) ‖ header MAC (32)
//! record        = ciphertext len u32 LE (4) ‖ seq u64 LE (8) ‖ ciphertext ‖ record MAC (32)
//! plaintext     = cache key (32) ‖ CachedVerdict ECV2 bytes
//! ```
//!
//! The ciphertext is AES-256-CTR under a nonce derived from the
//! record's globally-unique sequence number (the store never reuses a
//! sequence, including across compactions and torn-tail repairs, so
//! the keystream never repeats). The record MAC is HMAC-SHA256 over a
//! domain tag, the segment index, the sequence number, the length, and
//! the ciphertext — a record cannot be relocated to another segment,
//! reordered, resized, or modified without failing authentication. The
//! header MAC binds the magic and the segment index, so a renamed or
//! foreign segment file fails closed as garbage.

use engarde_core::cache::{CacheKey, CachedVerdict};
use engarde_crypto::aes::{ctr_xor, AesKey};
use engarde_crypto::hmac::{constant_time_eq, hmac_sha256};

/// Magic leading every segment file.
pub(crate) const MAGIC: &[u8; 8] = b"ENGSTOR1";

/// Length of a segment header: magic ‖ index ‖ MAC.
pub const SEGMENT_HEADER_LEN: usize = 8 + 8 + 32;

/// Length of a record's clear framing: ciphertext len ‖ seq.
pub(crate) const RECORD_FRAME_LEN: usize = 4 + 8;

/// Length of every MAC on disk.
pub(crate) const MAC_LEN: usize = 32;

/// Upper bound on a single record's ciphertext. A corrupt length field
/// must never drive a giant allocation; anything larger fails closed.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Smallest possible plaintext: a 32-byte cache key plus the minimum
/// `ECV2` encoding. Shorter ciphertexts are structurally impossible.
/// (Records written by the retired `ECV1` codec authenticate but fail
/// decode with `BadMagic` — the store drops them and re-inspects.)
pub(crate) const MIN_RECORD_LEN: usize = 32 + 4;

const ENC_LABEL: &[u8] = b"ENGARDE-STORE-ENC-V1";
const MAC_LABEL: &[u8] = b"ENGARDE-STORE-MAC-V1";
const HEADER_DOMAIN: &[u8] = b"ENGARDE-STORE-HDR-V1";
const RECORD_DOMAIN: &[u8] = b"ENGARDE-STORE-REC-V1";

/// The 32-byte sealing secret the store is opened with. In the serve
/// stack this is `EGETKEY(measurement of the EnGarde inspector,
/// store label)` — see `engarde_serve::persist::store_seal_key`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SealKey([u8; 32]);

impl SealKey {
    /// Wraps raw key bytes (e.g. the output of
    /// `SgxMachine::egetkey_for_measurement`).
    pub fn new(bytes: [u8; 32]) -> Self {
        SealKey(bytes)
    }
}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material, even in debug logs.
        write!(f, "SealKey(<redacted>)")
    }
}

/// The derived working keys: independent encryption and MAC subkeys.
pub(crate) struct StoreKeys {
    enc: AesKey,
    mac: [u8; 32],
}

impl StoreKeys {
    pub(crate) fn derive(seal: &SealKey) -> Self {
        let enc = hmac_sha256(&seal.0, ENC_LABEL);
        let mac = hmac_sha256(&seal.0, MAC_LABEL);
        StoreKeys {
            enc: AesKey::new_256(enc.as_bytes()),
            mac: *mac.as_bytes(),
        }
    }

    fn nonce_for(seq: u64) -> [u8; 16] {
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(b"ENGSTORE");
        nonce[8..].copy_from_slice(&seq.to_le_bytes());
        nonce
    }

    fn record_mac(&self, segment_index: u64, seq: u64, ciphertext: &[u8]) -> [u8; 32] {
        let mut msg = Vec::with_capacity(RECORD_DOMAIN.len() + 8 + 8 + 4 + ciphertext.len());
        msg.extend_from_slice(RECORD_DOMAIN);
        msg.extend_from_slice(&segment_index.to_le_bytes());
        msg.extend_from_slice(&seq.to_le_bytes());
        msg.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
        msg.extend_from_slice(ciphertext);
        *hmac_sha256(&self.mac, &msg).as_bytes()
    }

    fn header_mac(&self, segment_index: u64) -> [u8; 32] {
        let mut msg = Vec::with_capacity(HEADER_DOMAIN.len() + 8 + 8);
        msg.extend_from_slice(HEADER_DOMAIN);
        msg.extend_from_slice(MAGIC);
        msg.extend_from_slice(&segment_index.to_le_bytes());
        *hmac_sha256(&self.mac, &msg).as_bytes()
    }

    /// Builds an authenticated segment header for `segment_index`.
    pub(crate) fn encode_header(&self, segment_index: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&segment_index.to_le_bytes());
        out.extend_from_slice(&self.header_mac(segment_index));
        out
    }

    /// Verifies a segment header against the index the filename
    /// claims. Any mismatch — short file, bad magic, renamed file,
    /// foreign key — makes the whole segment garbage.
    pub(crate) fn verify_header(&self, bytes: &[u8], expected_index: u64) -> bool {
        if bytes.len() < SEGMENT_HEADER_LEN || &bytes[..8] != MAGIC {
            return false;
        }
        let mut idx = [0u8; 8];
        idx.copy_from_slice(&bytes[8..16]);
        if u64::from_le_bytes(idx) != expected_index {
            return false;
        }
        constant_time_eq(
            &self.header_mac(expected_index),
            &bytes[16..SEGMENT_HEADER_LEN],
        )
    }

    /// Seals one `(key, verdict)` pair into a framed record.
    pub(crate) fn seal_record(
        &self,
        segment_index: u64,
        seq: u64,
        key: &CacheKey,
        verdict: &CachedVerdict,
    ) -> Vec<u8> {
        let mut plaintext = Vec::with_capacity(32 + 64);
        plaintext.extend_from_slice(key.as_bytes());
        plaintext.extend_from_slice(&verdict.to_bytes());
        ctr_xor(&self.enc, &Self::nonce_for(seq), 0, &mut plaintext);
        let ciphertext = plaintext;
        let mac = self.record_mac(segment_index, seq, &ciphertext);
        let mut out = Vec::with_capacity(RECORD_FRAME_LEN + ciphertext.len() + MAC_LEN);
        out.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&ciphertext);
        out.extend_from_slice(&mac);
        out
    }

    /// Attempts to read the record starting at `bytes[offset..]`.
    pub(crate) fn open_record(
        &self,
        segment_index: u64,
        bytes: &[u8],
        offset: usize,
    ) -> RecordParse {
        let rest = &bytes[offset.min(bytes.len())..];
        if rest.is_empty() {
            return RecordParse::End;
        }
        if rest.len() < RECORD_FRAME_LEN {
            return RecordParse::TornTail { torn_seq: None };
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&rest[..4]);
        let len = u32::from_le_bytes(len4) as usize;
        let mut seq8 = [0u8; 8];
        seq8.copy_from_slice(&rest[4..12]);
        let seq = u64::from_le_bytes(seq8);
        if !(MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&len) {
            // An insane length is indistinguishable from framing
            // corruption: nothing past this point can be trusted.
            return RecordParse::Corrupt { seq };
        }
        let total = RECORD_FRAME_LEN + len + MAC_LEN;
        if rest.len() < total {
            return RecordParse::TornTail {
                torn_seq: Some(seq),
            };
        }
        let ciphertext = &rest[RECORD_FRAME_LEN..RECORD_FRAME_LEN + len];
        let mac = &rest[RECORD_FRAME_LEN + len..total];
        if !constant_time_eq(&self.record_mac(segment_index, seq, ciphertext), mac) {
            return RecordParse::Corrupt { seq };
        }
        let mut plaintext = ciphertext.to_vec();
        ctr_xor(&self.enc, &Self::nonce_for(seq), 0, &mut plaintext);
        let mut key_bytes = [0u8; 32];
        key_bytes.copy_from_slice(&plaintext[..32]);
        match CachedVerdict::from_bytes(&plaintext[32..]) {
            Ok(verdict) => RecordParse::Valid {
                seq,
                consumed: total,
                key: CacheKey::from_bytes(key_bytes),
                verdict,
            },
            // Authenticated but undecodable: a different codec version
            // (e.g. retired ECV1 records) or a buggy writer produced
            // the record. Fail closed, same as corruption — the
            // affected binary simply re-inspects.
            Err(_) => RecordParse::Corrupt { seq },
        }
    }
}

/// Outcome of attempting to read one record during recovery.
pub(crate) enum RecordParse {
    /// Clean end of segment.
    End,
    /// An authenticated record.
    Valid {
        seq: u64,
        consumed: usize,
        key: CacheKey,
        verdict: CachedVerdict,
    },
    /// The segment ends mid-record (a torn write). `torn_seq` is the
    /// partial record's claimed sequence, when enough framing survived
    /// to read it — used to keep the sequence counter (and with it the
    /// CTR nonce) from ever being reissued.
    TornTail { torn_seq: Option<u64> },
    /// A complete frame that fails authentication or decoding.
    Corrupt { seq: u64 },
}
