//! The [`VerdictStore`]: open/recover, append, rotate, hydrate,
//! compact.

use crate::format::{RecordParse, SealKey, StoreKeys, SEGMENT_HEADER_LEN};
use crate::StoreError;
use engarde_core::cache::{CacheKey, CachedVerdict, VerdictCache};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Tuning knobs for a store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreOptions {
    /// Records per segment before the store rotates to a fresh file.
    pub segment_max_records: usize,
    /// Live-fraction compaction threshold in per-mille: when fewer than
    /// `compact_live_per_mille` of every 1000 stored records are still
    /// live (the rest superseded by rewrites of the same key), the
    /// store compacts itself at the next segment rotation instead of
    /// waiting for an explicit [`VerdictStore::compact`] call. `0`
    /// disables the trigger (the default): drain-time-only compaction,
    /// the pre-existing behavior.
    pub compact_live_per_mille: u16,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_max_records: 256,
            compact_live_per_mille: 0,
        }
    }
}

/// What recovery found and repaired while opening a store. All counts
/// are typed observations, never reasons to fail: recovery always
/// completes with the longest authenticated prefix of every segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryReport {
    /// Segment files found on disk.
    pub segments_scanned: u64,
    /// Segments whose header failed authentication — skipped wholesale.
    pub garbage_segments: u64,
    /// Segment indices missing between the lowest and highest present
    /// index (a deleted or lost file). The store writes indices
    /// contiguously and compaction only removes a *prefix*, so any
    /// interior hole is loss. A lost first or final segment is
    /// indistinguishable from a smaller store and goes uncounted —
    /// the documented residual blind spot of a manifest-free log.
    pub lost_segments: u64,
    /// Authenticated records admitted (including later-superseded ones).
    pub records_recovered: u64,
    /// Records superseded by a later write of the same cache key
    /// (last-write-wins).
    pub superseded_records: u64,
    /// Complete frames that failed their MAC or decoding — the scan
    /// stopped there and the tail was truncated.
    pub corrupt_records: u64,
    /// Segments ending mid-record (torn writes) — tail truncated.
    pub torn_tail_truncations: u64,
    /// Bytes discarded by truncation and garbage-segment skips.
    pub bytes_discarded: u64,
}

impl RecoveryReport {
    /// Whether recovery found any damage at all.
    pub fn found_damage(&self) -> bool {
        self.garbage_segments > 0
            || self.lost_segments > 0
            || self.corrupt_records > 0
            || self.torn_tail_truncations > 0
    }
}

/// Outcome of a [`VerdictStore::compact`] pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompactionReport {
    /// Live records rewritten into fresh segments.
    pub records_kept: u64,
    /// Superseded records dropped.
    pub records_dropped: u64,
    /// Old segment files deleted.
    pub segments_removed: u64,
    /// On-disk bytes reclaimed (old size − new size).
    pub bytes_reclaimed: u64,
}

/// Counters exported through `engarde-serve` metrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StoreStats {
    /// Distinct cache keys currently live (last-write-wins).
    pub live_records: u64,
    /// Sealed records currently on disk (live + superseded).
    pub stored_records: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Records appended by this process.
    pub appended_records: u64,
    /// Compaction passes run by this process.
    pub compactions: u64,
    /// Superseded records dropped by compaction.
    pub compaction_dropped: u64,
    /// What recovery found when this store was opened.
    pub recovery: RecoveryReport,
}

/// An open, recovered verdict store. See the crate docs for the
/// format and the sealing/recovery invariants.
pub struct VerdictStore {
    dir: PathBuf,
    keys: StoreKeys,
    options: StoreOptions,
    /// Last-write-wins image of every authenticated record, keyed by
    /// raw cache-key bytes (`BTreeMap` for deterministic iteration).
    live: BTreeMap<[u8; 32], CachedVerdict>,
    /// Next record sequence number — monotonic for the store's
    /// lifetime on disk, never reissued (it is the CTR nonce).
    next_seq: u64,
    active_index: u64,
    active_records: usize,
    active_file: File,
    stored_records: u64,
    segment_count: u64,
    appended: u64,
    compactions: u64,
    compaction_dropped: u64,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for VerdictStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VerdictStore({} live / {} stored in {} segments at {})",
            self.live.len(),
            self.stored_records,
            self.segment_count,
            self.dir.display()
        )
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.seg"))
}

/// Parses `seg-NNNNNNNN.seg` back to its index.
fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Sorted `(index, path)` list of the segment files in `dir`.
pub(crate) fn segment_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io("list segments", &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("list segments", &e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(index) = parse_segment_name(name) {
                out.push((index, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|(index, _)| *index);
    Ok(out)
}

impl VerdictStore {
    /// Opens (creating if absent) and recovers the store at `dir`.
    ///
    /// Recovery scans every segment, admits the longest authenticated
    /// prefix of each, physically truncates torn/corrupt tails so
    /// later appends land at a clean offset, and records everything it
    /// found in the returned [`RecoveryReport`] (also kept in
    /// [`VerdictStore::stats`]).
    ///
    /// # Errors
    ///
    /// Only on real I/O failure (permissions, disk full, …) — damage
    /// in the segment files is repaired, not reported as an error.
    pub fn open(
        dir: &Path,
        seal_key: &SealKey,
        options: StoreOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        if dir.exists() && !dir.is_dir() {
            return Err(StoreError::NotADirectory);
        }
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create store dir", &e))?;
        let keys = StoreKeys::derive(seal_key);

        let mut report = RecoveryReport::default();
        let mut live: BTreeMap<[u8; 32], CachedVerdict> = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut stored_records = 0u64;
        let segments = segment_files(dir)?;
        let mut usable_indices: Vec<u64> = Vec::new();

        for (index, path) in &segments {
            report.segments_scanned += 1;
            let bytes = fs::read(path).map_err(|e| StoreError::io("read segment", &e))?;
            if !keys.verify_header(&bytes, *index) {
                report.garbage_segments += 1;
                report.bytes_discarded += bytes.len() as u64;
                continue;
            }
            usable_indices.push(*index);
            let mut offset = SEGMENT_HEADER_LEN;
            loop {
                match keys.open_record(*index, &bytes, offset) {
                    RecordParse::End => break,
                    RecordParse::Valid {
                        seq,
                        consumed,
                        key,
                        verdict,
                    } => {
                        next_seq = next_seq.max(seq + 1);
                        stored_records += 1;
                        report.records_recovered += 1;
                        if live.insert(*key.as_bytes(), verdict).is_some() {
                            report.superseded_records += 1;
                        }
                        offset += consumed;
                    }
                    RecordParse::TornTail { torn_seq } => {
                        report.torn_tail_truncations += 1;
                        report.bytes_discarded += (bytes.len() - offset) as u64;
                        // The torn record's sequence may have reached
                        // the platter before the crash; never reissue
                        // it (the sequence is the CTR nonce). When the
                        // frame is too short to read it, skip one
                        // sequence defensively.
                        next_seq = match torn_seq {
                            Some(seq) => next_seq.max(seq + 1),
                            None => next_seq + 1,
                        };
                        truncate_file(path, offset as u64)?;
                        break;
                    }
                    RecordParse::Corrupt { seq } => {
                        report.corrupt_records += 1;
                        report.bytes_discarded += (bytes.len() - offset) as u64;
                        next_seq = next_seq.max(seq.saturating_add(1));
                        truncate_file(path, offset as u64)?;
                        break;
                    }
                }
            }
        }

        // Lost-segment detection: present segment files must cover
        // min..=max contiguously (appends and compaction never skip an
        // index). A garbage segment is *present* — it is counted
        // above, not here.
        if let (Some((min, _)), Some((max, _))) = (segments.first(), segments.last()) {
            report.lost_segments = (max - min + 1).saturating_sub(segments.len() as u64);
        }

        // The active segment is the highest usable index; a fresh (or
        // fully-garbage) store starts a new segment after the highest
        // *file* index so garbage files are never appended to.
        let highest_file_index = segments.last().map(|(i, _)| *i);
        let (active_index, active_records, active_file) = match usable_indices.last() {
            Some(&index) if Some(index) == highest_file_index => {
                let count = count_records(&keys, dir, index)?;
                let file = open_append(&segment_path(dir, index))?;
                (index, count, file)
            }
            _ => {
                let index = highest_file_index.map_or(0, |i| i + 1);
                let file = create_segment(&keys, dir, index)?;
                (index, 0, file)
            }
        };

        let segment_count = segment_files(dir)?.len() as u64;
        let store = VerdictStore {
            dir: dir.to_path_buf(),
            keys,
            options,
            live,
            next_seq,
            active_index,
            active_records,
            active_file,
            stored_records,
            segment_count,
            appended: 0,
            compactions: 0,
            compaction_dropped: 0,
            recovery: report,
        };
        Ok((store, report))
    }

    /// Seals and appends one verdict, rotating to a fresh segment when
    /// the active one is full.
    ///
    /// # Errors
    ///
    /// Only on I/O failure; the record is sealed before any byte is
    /// written, so a failed append never leaves plaintext behind.
    pub fn append(&mut self, key: &CacheKey, verdict: &CachedVerdict) -> Result<(), StoreError> {
        if self.active_records >= self.options.segment_max_records.max(1) {
            self.rotate()?;
            self.maybe_auto_compact()?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let record = self.keys.seal_record(self.active_index, seq, key, verdict);
        self.active_file
            .write_all(&record)
            .map_err(|e| StoreError::io("append record", &e))?;
        self.active_file
            .flush()
            .map_err(|e| StoreError::io("flush segment", &e))?;
        self.active_records += 1;
        self.stored_records += 1;
        self.appended += 1;
        self.live.insert(*key.as_bytes(), verdict.clone());
        Ok(())
    }

    /// Appends a batch (the write-behind flush path).
    ///
    /// # Errors
    ///
    /// Propagates the first failed append; earlier records in the
    /// batch stay durable.
    pub fn append_batch(&mut self, items: &[(CacheKey, CachedVerdict)]) -> Result<(), StoreError> {
        for (key, verdict) in items {
            self.append(key, verdict)?;
        }
        Ok(())
    }

    /// The live-fraction trigger, checked at segment rotation (so its
    /// cost amortizes over `segment_max_records` appends): compacts
    /// when live records have fallen below `compact_live_per_mille` of
    /// every 1000 stored. A compaction pass leaves `stored == live`, so
    /// the trigger cannot re-fire until supersessions accumulate again.
    fn maybe_auto_compact(&mut self) -> Result<(), StoreError> {
        let threshold = u64::from(self.options.compact_live_per_mille);
        if threshold == 0 {
            return Ok(());
        }
        let live = self.live.len() as u64;
        if self.stored_records > live && live * 1000 < self.stored_records * threshold {
            self.compact()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        let index = self.active_index + 1;
        self.active_file = create_segment(&self.keys, &self.dir, index)?;
        self.active_index = index;
        self.active_records = 0;
        self.segment_count += 1;
        Ok(())
    }

    /// Inserts every live record into `cache` via
    /// [`VerdictCache::insert_hydrated`] (deterministic key order).
    /// Returns how many records were hydrated.
    pub fn hydrate_into(&self, cache: &mut VerdictCache) -> usize {
        for (key_bytes, verdict) in &self.live {
            cache.insert_hydrated(CacheKey::from_bytes(*key_bytes), verdict.clone());
        }
        self.live.len()
    }

    /// Rewrites the live records into fresh segments (continuing the
    /// index and sequence counters — neither is ever reused) and
    /// deletes every older segment file.
    ///
    /// # Errors
    ///
    /// Only on I/O failure. The old segments are deleted only after
    /// the replacement segments are fully written, so a crash
    /// mid-compaction loses nothing (recovery supersedes duplicates).
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let old_segments = segment_files(&self.dir)?;
        let old_bytes: u64 = old_segments
            .iter()
            .map(|(_, p)| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        let dropped = self.stored_records - self.live.len() as u64;

        // Write all live records into fresh segments after the current
        // active index.
        self.rotate()?;
        let first_new_index = self.active_index;
        let live: Vec<([u8; 32], CachedVerdict)> =
            self.live.iter().map(|(k, v)| (*k, v.clone())).collect();
        for (key_bytes, verdict) in &live {
            if self.active_records >= self.options.segment_max_records.max(1) {
                self.rotate()?;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let record = self.keys.seal_record(
                self.active_index,
                seq,
                &CacheKey::from_bytes(*key_bytes),
                verdict,
            );
            self.active_file
                .write_all(&record)
                .map_err(|e| StoreError::io("compact append", &e))?;
            self.active_records += 1;
        }
        self.active_file
            .flush()
            .map_err(|e| StoreError::io("compact flush", &e))?;

        // Old segments are now fully superseded: delete them.
        let mut removed = 0u64;
        for (index, path) in &old_segments {
            if *index < first_new_index {
                fs::remove_file(path).map_err(|e| StoreError::io("remove old segment", &e))?;
                removed += 1;
            }
        }
        self.stored_records = self.live.len() as u64;
        self.segment_count = segment_files(&self.dir)?.len() as u64;
        self.compactions += 1;
        self.compaction_dropped += dropped;

        let new_bytes: u64 = segment_files(&self.dir)?
            .iter()
            .map(|(_, p)| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        Ok(CompactionReport {
            records_kept: self.live.len() as u64,
            records_dropped: dropped,
            segments_removed: removed,
            bytes_reclaimed: old_bytes.saturating_sub(new_bytes),
        })
    }

    /// Distinct live cache keys.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether `key` has a live record.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.live.contains_key(key.as_bytes())
    }

    /// The live verdict for `key`, if any.
    pub fn get(&self, key: &CacheKey) -> Option<&CachedVerdict> {
        self.live.get(key.as_bytes())
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters for metrics export.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            live_records: self.live.len() as u64,
            stored_records: self.stored_records,
            segments: self.segment_count,
            appended_records: self.appended,
            compactions: self.compactions,
            compaction_dropped: self.compaction_dropped,
            recovery: self.recovery,
        }
    }
}

fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io("open for truncate", &e))?;
    file.set_len(len)
        .map_err(|e| StoreError::io("truncate tail", &e))?;
    Ok(())
}

fn open_append(path: &Path) -> Result<File, StoreError> {
    OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| StoreError::io("open segment", &e))
}

fn create_segment(keys: &StoreKeys, dir: &Path, index: u64) -> Result<File, StoreError> {
    let path = segment_path(dir, index);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)
        .map_err(|e| StoreError::io("create segment", &e))?;
    file.write_all(&keys.encode_header(index))
        .map_err(|e| StoreError::io("write header", &e))?;
    file.flush()
        .map_err(|e| StoreError::io("flush header", &e))?;
    Ok(file)
}

/// Counts the authenticated records already in segment `index` (used
/// to resume appends against the recovered active segment).
fn count_records(keys: &StoreKeys, dir: &Path, index: u64) -> Result<usize, StoreError> {
    let bytes =
        fs::read(segment_path(dir, index)).map_err(|e| StoreError::io("read segment", &e))?;
    let mut offset = SEGMENT_HEADER_LEN;
    let mut count = 0;
    loop {
        match keys.open_record(index, &bytes, offset) {
            RecordParse::Valid { consumed, .. } => {
                count += 1;
                offset += consumed;
            }
            _ => return Ok(count),
        }
    }
}
