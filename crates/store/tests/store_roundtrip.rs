//! Functional contract of the sealed verdict store: append → restart →
//! recover, segment rotation, last-write-wins, hydration, compaction,
//! and key binding.

use engarde_core::cache::{CacheKey, CachedVerdict, VerdictCache};
use engarde_core::policy::PolicyReport;
use engarde_crypto::sha256::Digest;
use engarde_store::{chaos, SealKey, StoreOptions, VerdictStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-cleaning scratch directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("engarde-store-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn seal_key() -> SealKey {
    SealKey::new([0x5A; 32])
}

fn key(n: u8) -> CacheKey {
    CacheKey::derive(&[n], &Digest([n; 32]))
}

fn verdict(tag: &str) -> CachedVerdict {
    CachedVerdict {
        compliant: true,
        detail: format!("compliant: {tag}"),
        policy_reports: vec![PolicyReport {
            policy: "stack-protection",
            items_checked: 3,
            detail: "guards=3".to_string(),
        }],
        disassembly_cycles: 1_000,
        policy_cycles: 500,
        instructions: 42,
        taint: None,
    }
}

fn small_segments() -> StoreOptions {
    StoreOptions {
        segment_max_records: 4,
        ..StoreOptions::default()
    }
}

#[test]
fn verdicts_survive_a_restart_bit_for_bit() {
    let dir = TempDir::new("restart");
    {
        let (mut store, report) =
            VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("open");
        assert!(!report.found_damage());
        for n in 0..10u8 {
            store
                .append(&key(n), &verdict(&format!("v{n}")))
                .expect("append");
        }
        assert_eq!(store.len(), 10);
    }
    let (store, report) =
        VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("reopen");
    assert!(!report.found_damage(), "clean shutdown recovers cleanly");
    assert_eq!(report.records_recovered, 10);
    assert_eq!(store.len(), 10);
    for n in 0..10u8 {
        assert_eq!(
            store.get(&key(n)).expect("recovered"),
            &verdict(&format!("v{n}")),
            "record {n} is bit-identical after restart"
        );
    }
}

#[test]
fn segments_rotate_and_recover_across_files() {
    let dir = TempDir::new("rotate");
    {
        let (mut store, _) =
            VerdictStore::open(dir.path(), &seal_key(), small_segments()).expect("open");
        for n in 0..10u8 {
            store.append(&key(n), &verdict("x")).expect("append");
        }
        assert!(store.stats().segments >= 3, "4-record segments rotated");
    }
    let (store, report) =
        VerdictStore::open(dir.path(), &seal_key(), small_segments()).expect("reopen");
    assert_eq!(report.records_recovered, 10);
    assert_eq!(report.lost_segments, 0);
    assert_eq!(store.len(), 10);
}

#[test]
fn last_write_wins_per_key() {
    let dir = TempDir::new("lww");
    {
        let (mut store, _) =
            VerdictStore::open(dir.path(), &seal_key(), small_segments()).expect("open");
        store.append(&key(1), &verdict("old")).expect("append");
        store.append(&key(2), &verdict("other")).expect("append");
        store.append(&key(1), &verdict("new")).expect("append");
    }
    let (store, report) =
        VerdictStore::open(dir.path(), &seal_key(), small_segments()).expect("reopen");
    assert_eq!(report.records_recovered, 3);
    assert_eq!(report.superseded_records, 1);
    assert_eq!(store.len(), 2);
    assert_eq!(store.get(&key(1)).expect("live"), &verdict("new"));
}

#[test]
fn hydration_fills_a_cache_with_warm_entries() {
    let dir = TempDir::new("hydrate");
    {
        let (mut store, _) =
            VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("open");
        for n in 0..5u8 {
            store.append(&key(n), &verdict("w")).expect("append");
        }
    }
    let (store, _) =
        VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("reopen");
    let mut cache = VerdictCache::new(16);
    assert_eq!(store.hydrate_into(&mut cache), 5);
    assert_eq!(cache.len(), 5);
    for n in 0..5u8 {
        assert!(cache.lookup(&key(n)).is_some());
    }
    assert_eq!(
        cache.stats().warm_hits,
        5,
        "hydrated entries count warm hits"
    );
    assert_eq!(cache.stats().hits, 5);
}

#[test]
fn compaction_drops_superseded_records_and_old_segments() {
    let dir = TempDir::new("compact");
    let (mut store, _) =
        VerdictStore::open(dir.path(), &seal_key(), small_segments()).expect("open");
    // 20 appends over 4 keys: 16 superseded records across ~5 segments.
    for round in 0..5u8 {
        for n in 0..4u8 {
            store
                .append(&key(n), &verdict(&format!("r{round}")))
                .expect("append");
        }
    }
    let before = store.stats();
    assert_eq!(before.stored_records, 20);
    assert_eq!(before.live_records, 4);

    let report = store.compact().expect("compact");
    assert_eq!(report.records_kept, 4);
    assert_eq!(report.records_dropped, 16);
    assert!(report.segments_removed >= 4);
    assert!(report.bytes_reclaimed > 0);
    let after = store.stats();
    assert_eq!(after.stored_records, 4);
    assert_eq!(after.compactions, 1);

    // The compacted store recovers the same live image with no damage:
    // compaction removed a segment *prefix*, so the surviving indices
    // are still contiguous and trip no lost-segment counter.
    drop(store);
    let (store, report) =
        VerdictStore::open(dir.path(), &seal_key(), small_segments()).expect("reopen");
    assert_eq!(store.len(), 4);
    assert!(report.records_recovered >= 4);
    for n in 0..4u8 {
        assert_eq!(store.get(&key(n)).expect("live"), &verdict("r4"));
    }
}

#[test]
fn a_different_seal_key_reads_nothing() {
    let dir = TempDir::new("foreign-key");
    {
        let (mut store, _) =
            VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("open");
        for n in 0..4u8 {
            store.append(&key(n), &verdict("sealed")).expect("append");
        }
    }
    // A different inspector build derives a different seal key: every
    // segment fails header authentication and is skipped wholesale —
    // zero unauthenticated verdicts admitted, zero panics.
    let foreign = SealKey::new([0xA5; 32]);
    let (store, report) =
        VerdictStore::open(dir.path(), &foreign, StoreOptions::default()).expect("open");
    assert_eq!(store.len(), 0, "foreign key admits nothing");
    assert!(report.garbage_segments >= 1);
    assert_eq!(report.records_recovered, 0);
}

#[test]
fn no_plaintext_verdict_bytes_reach_disk() {
    let dir = TempDir::new("plaintext");
    let marker = "MARKER-THE-QUICK-BROWN-VERDICT";
    let (mut store, _) =
        VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("open");
    let mut v = verdict("x");
    v.detail = format!("compliant: {marker}");
    store.append(&key(9), &v).expect("append");
    drop(store);

    for path in chaos::segment_paths(dir.path()).expect("list") {
        let bytes = std::fs::read(&path).expect("read");
        assert!(
            !contains(&bytes, marker.as_bytes()),
            "verdict detail leaked in {}",
            path.display()
        );
        assert!(
            !contains(&bytes, b"stack-protection"),
            "policy name leaked in {}",
            path.display()
        );
        assert!(
            !contains(&bytes, key(9).as_bytes()),
            "cache key leaked in {}",
            path.display()
        );
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[test]
fn sequence_numbers_are_never_reissued_after_a_torn_tail() {
    let dir = TempDir::new("seq");
    {
        let (mut store, _) =
            VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("open");
        for n in 0..3u8 {
            store.append(&key(n), &verdict("v")).expect("append");
        }
    }
    // Tear the last record, then append after recovery: the new record
    // must decrypt correctly on a third open (a reused CTR nonce with
    // different plaintext would corrupt silently — the MAC would catch
    // it, losing the record).
    chaos::torn_write(dir.path(), 7)
        .expect("chaos")
        .expect("tore");
    {
        let (mut store, report) =
            VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("reopen");
        assert_eq!(report.torn_tail_truncations, 1);
        store
            .append(&key(3), &verdict("after-tear"))
            .expect("append");
    }
    let (store, report) =
        VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("third open");
    assert!(!report.found_damage());
    assert_eq!(store.get(&key(3)).expect("live"), &verdict("after-tear"));
}

#[test]
fn live_fraction_threshold_auto_compacts_a_superseding_workload() {
    // A re-verdicting fleet rewrites the same few keys forever. With
    // only drain-gated compaction the log grows without bound; the
    // live-fraction threshold must bound it. Run the identical
    // supersession workload twice — threshold off, then on — and pin
    // that the trigger actually fires and shrinks the segment count.
    let run = |dir: &std::path::Path, compact_live_per_mille: u16| {
        let (mut store, _) = VerdictStore::open(
            dir,
            &seal_key(),
            StoreOptions {
                segment_max_records: 4,
                compact_live_per_mille,
            },
        )
        .expect("open");
        // 40 appends over 4 keys: 4 live, 36 superseded by the end.
        for round in 0..10u8 {
            for n in 0..4u8 {
                store
                    .append(&key(n), &verdict(&format!("round-{round}")))
                    .expect("append");
            }
        }
        store
    };

    let plain_dir = TempDir::new("autocompact-off");
    let plain = run(plain_dir.path(), 0);
    assert_eq!(plain.stats().compactions, 0, "0 per mille must not fire");
    assert!(
        plain.stats().segments >= 8,
        "without the trigger the log must keep growing, got {} segments",
        plain.stats().segments
    );

    // 500 per mille: compact whenever fewer than half the stored
    // records are live — i.e. as soon as supersessions outnumber live
    // keys at a rotation point.
    let auto_dir = TempDir::new("autocompact-on");
    let auto = run(auto_dir.path(), 500);
    let stats = auto.stats();
    assert!(
        stats.compactions >= 2,
        "live-fraction trigger never fired: {stats:?}"
    );
    assert!(
        stats.segments < plain.stats().segments / 2,
        "auto-compaction must bound segment growth: {} vs {} without",
        stats.segments,
        plain.stats().segments
    );
    assert!(stats.compaction_dropped > 0);
    assert_eq!(stats.live_records, 4, "compaction must not lose live keys");

    // The bounded store still serves the latest write of every key and
    // recovers clean: compaction under the trigger is just compaction.
    drop(auto);
    let (reopened, report) = VerdictStore::open(
        auto_dir.path(),
        &seal_key(),
        StoreOptions {
            segment_max_records: 4,
            compact_live_per_mille: 500,
        },
    )
    .expect("reopen");
    assert!(!report.found_damage());
    assert_eq!(reopened.len(), 4);
    for n in 0..4u8 {
        assert_eq!(
            reopened.get(&key(n)).expect("live key"),
            &verdict("round-9"),
            "key {n} must resolve to its final supersession"
        );
    }
}
