//! Corruption properties of the sealed store's recovery path.
//!
//! The acceptance contract: *any* on-disk damage — truncation at every
//! possible offset, single-bit flips anywhere, whole garbage segments,
//! deleted files — recovers the longest authenticated prefix with
//! typed counters. Zero panics, and zero unauthenticated verdicts
//! admitted: every record recovery returns must be bit-identical to
//! one the store once sealed.

use engarde_core::cache::{CacheKey, CachedVerdict};
use engarde_core::policy::PolicyReport;
use engarde_crypto::sha256::Digest;
use engarde_rand::harness::Property;
use engarde_rand::Rng;
use engarde_store::{chaos, SealKey, StoreOptions, VerdictStore};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("engarde-corrupt-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn seal_key() -> SealKey {
    SealKey::new([0x42; 32])
}

fn key(n: u8) -> CacheKey {
    CacheKey::derive(&[n], &Digest([n; 32]))
}

fn verdict(n: u8) -> CachedVerdict {
    CachedVerdict {
        compliant: !n.is_multiple_of(3),
        detail: format!("verdict-{n}"),
        policy_reports: vec![PolicyReport {
            policy: "indirect-function-call",
            items_checked: n as usize,
            detail: String::new(),
        }],
        disassembly_cycles: 10_000 + n as u64,
        policy_cycles: 5_000 + n as u64,
        instructions: 100 + n as usize,
        taint: None,
    }
}

/// Seeds a store with `records` verdicts over 4-record segments and
/// returns the ground truth: what each key's live verdict must be if
/// recovered at all.
fn seed_store(dir: &Path, records: u8) -> HashMap<[u8; 32], CachedVerdict> {
    let (mut store, _) = VerdictStore::open(
        dir,
        &seal_key(),
        StoreOptions {
            segment_max_records: 4,
            ..StoreOptions::default()
        },
    )
    .expect("open");
    let mut truth = HashMap::new();
    for n in 0..records {
        store.append(&key(n), &verdict(n)).expect("append");
        truth.insert(*key(n).as_bytes(), verdict(n));
    }
    truth
}

/// Reopens the store after damage and checks the iron invariant: no
/// panic (we got here), and every admitted record is bit-identical to
/// a record the store once sealed — corruption may *lose* suffixes,
/// never fabricate or alter a verdict.
fn assert_only_authentic_records(dir: &Path, truth: &HashMap<[u8; 32], CachedVerdict>) {
    let (store, report) = VerdictStore::open(dir, &seal_key(), StoreOptions::default())
        .expect("recovery only errors on real I/O failure");
    assert!(store.len() <= truth.len());
    let mut cache = engarde_core::cache::VerdictCache::new(64);
    let hydrated = store.hydrate_into(&mut cache);
    assert_eq!(hydrated, store.len());
    for n in 0..=u8::MAX {
        let k = key(n);
        if let Some(got) = store.get(&k) {
            let expected = truth
                .get(k.as_bytes())
                .expect("recovered a key that was never written");
            assert_eq!(got, expected, "recovered verdict for key {n} was altered");
        }
        if truth.get(k.as_bytes()).is_none() {
            break;
        }
    }
    // The report is internally consistent: damage counters are the
    // only way records disappear.
    if store.len() < truth.len() {
        assert!(
            report.found_damage() || report.records_recovered < truth.len() as u64,
            "records vanished without a damage counter"
        );
    }
}

#[test]
fn truncation_at_every_offset_recovers_the_authenticated_prefix() {
    // Exhaustive, not sampled: seed one store, then for every prefix
    // length of the final segment, truncate to it and recover.
    let dir = TempDir::new("every-offset");
    let truth = seed_store(dir.path(), 6);
    let paths = chaos::segment_paths(dir.path()).expect("list");
    let target = paths.last().expect("has segments").clone();
    let original = std::fs::read(&target).expect("read");

    for len in 0..original.len() {
        std::fs::write(&target, &original[..len]).expect("truncate");
        assert_only_authentic_records(dir.path(), &truth);
        std::fs::write(&target, &original).expect("restore");
    }
}

#[test]
fn random_single_bit_flips_never_panic_and_never_fabricate() {
    Property::new("store_bit_flips_fail_closed")
        .cases(96)
        .run(|rng| {
            let dir = TempDir::new("bitflip");
            let truth = seed_store(dir.path(), rng.gen_range(1u8..14));
            let paths = chaos::segment_paths(dir.path()).expect("list");
            let target = &paths[rng.gen_range(0usize..paths.len())];
            let mut bytes = std::fs::read(target).expect("read");
            let pos = rng.gen_range(0usize..bytes.len());
            bytes[pos] ^= 1 << rng.gen_range(0u8..8);
            std::fs::write(target, &bytes).expect("write");
            assert_only_authentic_records(dir.path(), &truth);
        });
}

#[test]
fn random_multi_corruption_storms_never_panic() {
    Property::new("store_corruption_storms_fail_closed")
        .cases(64)
        .run(|rng| {
            let dir = TempDir::new("storm");
            let truth = seed_store(dir.path(), rng.gen_range(4u8..20));
            for _ in 0..rng.gen_range(1usize..5) {
                match rng.gen_range(0u8..4) {
                    0 => {
                        let _ = chaos::torn_write(dir.path(), rng.gen());
                    }
                    1 => {
                        let _ = chaos::flip_bit(dir.path(), rng.gen(), rng.gen());
                    }
                    2 => {
                        let _ = chaos::lose_segment(dir.path(), rng.gen());
                    }
                    _ => {
                        // A whole garbage segment wearing a valid name.
                        let len = rng.gen_range(0usize..512);
                        let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                        let idx = rng.gen_range(90u64..99);
                        std::fs::write(dir.path().join(format!("seg-{idx:08}.seg")), &garbage)
                            .expect("write garbage");
                    }
                }
            }
            assert_only_authentic_records(dir.path(), &truth);
        });
}

#[test]
fn garbage_segments_are_skipped_with_typed_counters() {
    let dir = TempDir::new("garbage");
    let truth = seed_store(dir.path(), 8);
    // Overwrite one real segment with garbage of the same length and
    // drop a foreign-named one next to it.
    let paths = chaos::segment_paths(dir.path()).expect("list");
    let victim = &paths[0];
    let len = std::fs::metadata(victim).expect("meta").len() as usize;
    std::fs::write(victim, vec![0xEE; len]).expect("overwrite");
    std::fs::write(dir.path().join("seg-00000007.seg"), b"not a segment").expect("write");

    let (_, report) =
        VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("open");
    assert!(report.garbage_segments >= 2);
    assert!(report.bytes_discarded >= len as u64);
    assert_only_authentic_records(dir.path(), &truth);
}

#[test]
fn chaos_helpers_report_what_recovery_then_finds() {
    // Each chaos primitive's `detectable` claim must be honest: a
    // detectable injection always surfaces in the recovery report.
    let dir = TempDir::new("honest");
    seed_store(dir.path(), 12); // 3 segments of 4
    let torn = chaos::torn_write(dir.path(), 5)
        .expect("io")
        .expect("had records");
    assert!(torn.detectable);
    let (_, report) =
        VerdictStore::open(dir.path(), &seal_key(), StoreOptions::default()).expect("open");
    assert!(report.torn_tail_truncations >= 1, "torn write detected");

    let dir2 = TempDir::new("honest2");
    seed_store(dir2.path(), 12);
    let flip = chaos::flip_bit(dir2.path(), 3, 4)
        .expect("io")
        .expect("had records");
    assert!(flip.detectable);
    let (_, report) =
        VerdictStore::open(dir2.path(), &seal_key(), StoreOptions::default()).expect("open");
    // A flipped ciphertext/MAC bit fails authentication (corrupt); a
    // flipped length field can masquerade as a torn tail instead.
    // Either way the damage is typed and counted.
    assert!(report.found_damage(), "bit flip detected");

    let dir3 = TempDir::new("honest3");
    seed_store(dir3.path(), 12);
    let lost = chaos::lose_segment(dir3.path(), 1)
        .expect("io")
        .expect("had segments");
    assert!(lost.detectable, "3 segments: interior loss is observable");
    let (_, report) =
        VerdictStore::open(dir3.path(), &seal_key(), StoreOptions::default()).expect("open");
    assert!(report.lost_segments >= 1, "lost segment detected");
}
