#!/usr/bin/env bash
# Hermetic verification: tier-1 (release build + full test suite) with
# the network-facing registry disabled, then an assertion that the
# dependency graph contains no registry (crates.io) packages at all —
# every crate in the workspace must resolve by path.
#
# Run from anywhere: the script cd's to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: test suite (offline) =="
cargo test -q --offline --workspace

echo "== lint: clippy, warnings denied =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== lint: rustfmt drift =="
cargo fmt --check

echo "== smoke: bench_serve_throughput (bounded) =="
# A small bounded replay: proves the service bench runs end-to-end and
# emits the documented JSON schema. The full run (EXPERIMENTS.md) uses
# the defaults; this one is sized to finish in seconds.
smoke_out=target/BENCH_serve_smoke.json
cargo run --release --offline -q -p engarde-bench --bin bench_serve_throughput -- \
    --sessions 6 --shards 1,2 --scale 3 --capacity 64 \
    --out "$smoke_out"
jq -e '
    .deterministic == true
    and (.runs | length == 2)
    and (.runs | all(
        (.throughput_per_sec > 0)
        and (.p50_latency_cycles > 0)
        and (.p99_latency_cycles >= .p50_latency_cycles)
        and (.fingerprint | type == "string")))
    and (.runs[1].speedup_vs_min_fleet > 1)
    and (.overload.rejection_rate > 0)
    and (.skewed.deterministic == true)
    and (.skewed.runs | length == 4)
    and (.skewed.runs | all(
        (.throughput_per_sec > 0)
        and (.makespan_cycles > 0)
        and (.fingerprint | type == "string")))
    and (.skewed.speedup_steal > .skewed.speedup_pinned)
    and (.skewed.speedup_steal_batch_cache >= .skewed.speedup_steal)
    and ([.skewed.runs[] | select(.steal) | .steals] | add > 0)
    and ([.skewed.runs[] | select(.batch) | .batches] | add > 0)
    and (.threaded | type == "object")
    and (.threaded.completed > 0)
    and (.threaded.wall_throughput_per_sec > 0)
    and ([.threaded.steals, .threaded.stolen_sessions,
          .threaded.drained_from_dead, .threaded.batches,
          .threaded.batched_sessions] | all(type == "number" and . >= 0))
    and (.threaded.stolen_sessions >= .threaded.drained_from_dead)
' "$smoke_out" > /dev/null \
    || { echo "FAIL: $smoke_out missing required keys/invariants" >&2; exit 1; }
echo "OK: $smoke_out schema + invariants hold"

echo "== smoke: bench_verdict_cache (bounded) =="
# Bounded verdict-cache replay: the bench itself asserts that cached
# and uncached runs sign bit-identical verdicts and that distinct
# binaries never hit; the jq gate re-checks the exported schema.
cache_out=target/BENCH_cache_smoke.json
cargo run --release --offline -q -p engarde-bench --bin bench_verdict_cache -- \
    --sessions 6 --scale 3 --cache-capacity 16 --cross-shards 2 \
    --out "$cache_out"
jq -e '
    .verdicts_bit_identical == true
    and (.speedup_same_vs_distinct > 1)
    and (.same_binary_cached.cache_hits == .sessions - 1)
    and (.same_binary_cached.verdict_fingerprint
         == .same_binary_uncached.verdict_fingerprint)
    and (.distinct_binary_cached.cache_hits == 0)
    and (.distinct_binary_cached.cache_insertions == .sessions)
    and (.cross_shard.run.cache_hits > 0)
    and ([.same_binary_cached, .same_binary_uncached, .distinct_binary_cached]
         | all(.sessions_per_model_sec > 0 and .makespan_cycles > 0))
' "$cache_out" > /dev/null \
    || { echo "FAIL: $cache_out missing required keys/invariants" >&2; exit 1; }
echo "OK: $cache_out schema + invariants hold"

echo "== smoke: bench_fault_recovery (bounded) =="
# Bounded chaos replay: transient faults injected into a compliant
# fleet must be retried to verdicts (recovery floor 0.9), the idle
# fault layer must be bit-identical to no layer at all, and the
# per-fault lifecycle counters must balance (every injection detected,
# every detection recovered or evicted).
faults_out=target/BENCH_faults_smoke.json
cargo run --release --offline -q -p engarde-bench --bin bench_fault_recovery -- \
    --sessions 10 --scale 3 --out "$faults_out"
jq -e '
    (.recovery_rate >= 0.9)
    and (.throughput_retention > 0)
    and (.fault_free_identical == true)
    and (.faults | type == "object")
    and ([.faults[]] | all(
        (.injected >= .detected)
        and (.detected == .recovered + .evicted)))
    and ([.faults[].injected] | add > 0)
' "$faults_out" > /dev/null \
    || { echo "FAIL: $faults_out missing required keys/invariants" >&2; exit 1; }
echo "OK: $faults_out schema + invariants hold"

echo "== smoke: bench_taint_analysis (bounded) =="
# Bounded taint-engine replay: the bench itself asserts every leaking
# fixture is rejected, every compliant twin passes, and the shared
# analysis memo beats two fresh passes; the jq gate re-checks the
# exported schema and the linear-scaling/memo invariants.
taint_out=target/BENCH_analysis_smoke.json
cargo run --release --offline -q -p engarde-bench --bin bench_taint_analysis -- \
    --depths 2,4,8 --out "$taint_out"
jq -e '
    .all_fixtures_correct == true
    and (.fixtures | [.[]] | all(. == true))
    and (.scaling | length == 3)
    and (.scaling | all(
        (.taint_cycles > 0)
        and (.propagation_steps > 0)
        and (.sccs == .functions)
        and (.leaks == 0)))
    and (.memo.memo_speedup >= 1.5)
    and (.memo.shared_two_policy_cycles
         < .memo.single_leakage_cycles + .memo.single_branch_cycles)
    and (.memory_domain | type == "object")
    and (.memory_domain.spill_cells >= 1)
    and (.memory_domain.cell_steps > 0)
    and (.memory_domain.spill_chain_cycles > .memory_domain.plain_chain_cycles)
    and ([.memory_domain.weak_updates, .memory_domain.unresolved_store_sinks]
         | all(type == "number" and . >= 0))
' "$taint_out" > /dev/null \
    || { echo "FAIL: $taint_out missing required keys/invariants" >&2; exit 1; }
echo "OK: $taint_out schema + invariants hold"

echo "== smoke: bench_store_warmstart (bounded) =="
# Bounded warm-start replay: the bench itself asserts a restarted fleet
# reproduces the cold run's verdicts bit-for-bit from the sealed store,
# hydrates every record, and clears a 2x speedup floor; the jq gate
# re-checks the exported schema.
store_out=target/BENCH_store_smoke.json
cargo run --release --offline -q -p engarde-bench --bin bench_store_warmstart -- \
    --sessions 6 --scale 3 --out "$store_out"
jq -e '
    .deterministic == true
    and (.verdicts_bit_identical == true)
    and (.all_warm_hits == true)
    and (.warmstart_speedup >= 2)
    and (.cold.flushed == .sessions)
    and (.cold.hydrated == 0)
    and (.warm_restart.hydrated == .sessions)
    and (.warm_restart.warm_hits == .sessions)
    and (.warm_restart.flushed == 0)
    and (.warm_restart.verdict_fingerprint == .cold.verdict_fingerprint)
    and (.warm_restart.makespan_cycles == .warm_repeat.makespan_cycles)
    and ([.cold, .warm_restart, .warm_repeat]
         | all(.sessions_per_model_sec > 0 and .makespan_cycles > 0))
' "$store_out" > /dev/null \
    || { echo "FAIL: $store_out missing required keys/invariants" >&2; exit 1; }
echo "OK: $store_out schema + invariants hold"

echo "== gate: no unwrap/expect in hostile-input/serve non-test code =="
# The parser faces hostile bytes, the analysis/policy engines chew on
# attacker-shaped binaries, the serve path faces injected faults, and
# the store recovers arbitrarily damaged segments; every read must be
# fallible and no fault may panic a worker. Strip each file's
# #[cfg(test)] module, then refuse any unwrap()/expect( left.
panic_free_files=(
    crates/elf/src/parse.rs
    crates/core/src/cache.rs
    crates/core/src/exec.rs
    crates/core/src/analysis/*.rs
    crates/core/src/policy/*.rs
    crates/serve/src/error.rs
    crates/serve/src/faults.rs
    crates/serve/src/metrics.rs
    crates/serve/src/persist.rs
    crates/serve/src/pool.rs
    crates/serve/src/regimes.rs
    crates/serve/src/service.rs
    crates/serve/src/session.rs
    crates/serve/src/lib.rs
    crates/store/src/*.rs
)
for f in "${panic_free_files[@]}"; do
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
            | grep -nE '\.unwrap\(\)|\.expect\('; then
        echo "FAIL: $f non-test code calls unwrap()/expect(" >&2
        exit 1
    fi
done
echo "OK: ${#panic_free_files[@]} files of non-test code are panic-free"

echo "== hermetic: dependency graph has zero registry packages =="
# Every package with a non-null "source" came from a registry or git
# remote; a hermetic tree has none.
metadata=$(cargo metadata --offline --format-version 1)
if echo "$metadata" | grep -q '"source":"registry'; then
    echo "FAIL: registry dependencies found:" >&2
    echo "$metadata" | grep -o '"id":"[^"]*registry[^"]*"' >&2
    exit 1
fi
if echo "$metadata" | grep -q '"source":"git'; then
    echo "FAIL: git dependencies found" >&2
    exit 1
fi

echo "OK: tier-1 green, dependency graph is path-only"
