#!/usr/bin/env bash
# Hermetic verification: tier-1 (release build + full test suite) with
# the network-facing registry disabled, then an assertion that the
# dependency graph contains no registry (crates.io) packages at all —
# every crate in the workspace must resolve by path.
#
# Run from anywhere: the script cd's to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== tier-1: test suite (offline) =="
cargo test -q --offline --workspace

echo "== lint: clippy, warnings denied =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== lint: rustfmt drift =="
cargo fmt --check

echo "== hermetic: dependency graph has zero registry packages =="
# Every package with a non-null "source" came from a registry or git
# remote; a hermetic tree has none.
metadata=$(cargo metadata --offline --format-version 1)
if echo "$metadata" | grep -q '"source":"registry'; then
    echo "FAIL: registry dependencies found:" >&2
    echo "$metadata" | grep -o '"id":"[^"]*registry[^"]*"' >&2
    exit 1
fi
if echo "$metadata" | grep -q '"source":"git'; then
    echo "FAIL: git dependencies found" >&2
    exit 1
fi

echo "OK: tier-1 green, dependency graph is path-only"
