//! Malicious-client and cheating-provider scenarios.
//!
//! Run with `cargo run --release --example malicious_client`.
//!
//! Demonstrates EnGarde rejecting the SLA-violating inputs the paper's
//! threat model (§3) worries about:
//!
//! 1. a client linking a **tampered libc** (library-linking violation),
//! 2. a client shipping code **without stack protection** when the SLA
//!    requires `-fstack-protector-all`,
//! 3. a client shipping a **stripped** binary (auto-rejected),
//! 4. a client shipping code containing a **syscall** (illegal inside an
//!    enclave, caught by NaCl-style validation),
//! 5. a **cheating provider** flipping the verdict — detected by the
//!    client through the enclave signature.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{LibraryLinkingPolicy, PolicyModule, StackProtectionPolicy};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::{Instrumentation, LibcLibrary};
use engarde::EngardeError;

fn machine_config(seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 1_024,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    }
}

/// Runs the full protocol for `binary` under `policies`; returns the
/// provider's verdict (or the protocol error).
fn provision(
    binary: Vec<u8>,
    make_policies: &dyn Fn() -> Vec<Box<dyn PolicyModule>>,
    seed: u64,
) -> Result<(bool, String), EngardeError> {
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &make_policies(),
        128,
        512,
    );
    let mut provider = CloudProvider::new(machine_config(seed));
    let enclave = provider.create_engarde_enclave(spec.clone(), make_policies())?;
    let mut client = Client::new(
        binary,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        seed ^ 1,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &key)?;
    let wrapped = client.establish_channel(&key)?;
    provider.open_channel(enclave, &wrapped)?;
    for block in client.content_blocks()? {
        provider.deliver(enclave, &block)?;
    }
    let view = provider.inspect_and_provision(enclave)?;
    let verdict = provider.signed_verdict(enclave).expect("verdict").clone();
    client.verify_verdict(&verdict, &key)?;
    Ok((view.compliant, verdict.detail))
}

fn main() -> Result<(), EngardeError> {
    println!("== EnGarde vs. malicious clients ==\n");

    // ---- 1. Tampered libc ------------------------------------------------
    // The SLA's hash database is genuine musl 1.0.5; the client's binary
    // embeds a patched strlen (e.g. a backdoored allocator would look the
    // same to this check).
    let musl_policy = || -> Vec<Box<dyn PolicyModule>> {
        let lib = LibcLibrary::build(Instrumentation::None);
        // The *agreed* database is built from a tampered copy standing in
        // for "the client patched its libc": the binary embeds genuine
        // blocks, the database expects the patched ones → mismatch.
        vec![Box::new(LibraryLinkingPolicy::new(
            "musl-libc",
            lib.tampered("strlen").function_hashes(),
        ))]
    };
    let binary = generate(&WorkloadSpec {
        name: "patched_libc_app".into(),
        target_instructions: 15_000,
        libc_functions_used: 120,
        ..WorkloadSpec::default()
    });
    let (compliant, detail) = provision(binary.image, &musl_policy, 0xA)?;
    println!("1. tampered libc        → compliant = {compliant}");
    println!("   verdict: {detail}\n");
    assert!(!compliant);

    // ---- 2. Missing stack protection ----------------------------------------
    let sp_policy =
        || -> Vec<Box<dyn PolicyModule>> { vec![Box::new(StackProtectionPolicy::new())] };
    let unprotected = generate(&WorkloadSpec {
        name: "unprotected_app".into(),
        target_instructions: 12_000,
        instrumentation: Instrumentation::None, // compiled WITHOUT the flag
        ..WorkloadSpec::default()
    });
    let (compliant, detail) = provision(unprotected.image, &sp_policy, 0xB)?;
    println!("2. no -fstack-protector → compliant = {compliant}");
    println!("   verdict: {detail}\n");
    assert!(!compliant);

    // ---- 3. Stripped binary ----------------------------------------------------
    let mut spec = WorkloadSpec {
        name: "stripped_app".into(),
        target_instructions: 12_000,
        ..WorkloadSpec::default()
    };
    spec.seed ^= 77;
    let stripped = {
        // Rebuild the image without its symbol table.
        let w = generate(&spec);
        let elf = engarde::elf::parse::ElfFile::parse(&w.image).expect("parses");
        let text = elf.section(".text").expect(".text").clone();
        let mut b = engarde::elf::build::ElfBuilder::new();
        b.text(text.data)
            .entry(elf.header().e_entry - 0x1000)
            .strip();
        b.build()
    };
    let (compliant, detail) = provision(stripped, &sp_policy, 0xC)?;
    println!("3. stripped binary      → compliant = {compliant}");
    println!("   verdict: {detail}\n");
    assert!(!compliant);
    // Stripped binaries die one of two ways: no symbols for the policy,
    // or — without symbol reachability roots — NaCl validation itself.
    assert!(
        detail.contains("stripped") || detail.contains("unreachable"),
        "{detail}"
    );

    // ---- 4. Syscall smuggled into enclave code ------------------------------------
    let mut asm = engarde::x86::encode::Assembler::new();
    asm.mov_ri32(engarde::x86::reg::Reg::Rax, 60); // exit(2) syscall number
    asm.raw_bytes(&[0x0f, 0x05]); // syscall
    asm.ret();
    let text = asm.finish();
    let len = text.len() as u64;
    let mut b = engarde::elf::build::ElfBuilder::new();
    b.text(text).function("main", 0, len).entry(0);
    let (compliant, detail) = provision(b.build(), &sp_policy, 0xD)?;
    println!("4. syscall in code      → compliant = {compliant}");
    println!("   verdict: {detail}\n");
    assert!(!compliant);
    assert!(detail.contains("syscall"));

    // ---- 5. Cheating provider -------------------------------------------------------
    // The provider cannot forge a "non-compliant" verdict for compliant
    // code: the verdict is signed by the enclave key the client attested.
    let honest_policy = || -> Vec<Box<dyn PolicyModule>> {
        let lib = LibcLibrary::build(Instrumentation::None);
        vec![Box::new(LibraryLinkingPolicy::new(
            "musl-libc",
            lib.function_hashes(),
        ))]
    };
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &honest_policy(),
        128,
        512,
    );
    let mut provider = CloudProvider::new(machine_config(0xE));
    let enclave = provider.create_engarde_enclave(spec.clone(), honest_policy())?;
    let good = generate(&WorkloadSpec {
        name: "honest_app".into(),
        target_instructions: 10_000,
        ..WorkloadSpec::default()
    });
    let mut client = Client::new(
        good.image,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        0xF,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &key)?;
    let wrapped = client.establish_channel(&key)?;
    provider.open_channel(enclave, &wrapped)?;
    for block in client.content_blocks()? {
        provider.deliver(enclave, &block)?;
    }
    provider.inspect_and_provision(enclave)?;
    let mut forged = provider.signed_verdict(enclave).expect("verdict").clone();
    forged.compliant = false; // the provider lies
    forged.detail = "policy violated (trust me)".into();
    match client.verify_verdict(&forged, &key) {
        Err(e) => {
            println!("5. provider flips the verdict → client detects it: {e}");
        }
        Ok(v) => panic!("forged verdict accepted as {v}!"),
    }
    println!("\nall five scenarios behaved as the paper's threat model requires");
    Ok(())
}
