//! Running the provisioned enclave: the full lifecycle, including
//! execution.
//!
//! Run with `cargo run --release --example execute_enclave`.
//!
//! The paper stops at provisioning ("the enclave can be accessed and
//! executed as on traditional SGX platforms"); this example carries on:
//! after EnGarde inspects and the host locks permissions, the client's
//! code actually *runs* inside the simulated enclave. Three things are
//! demonstrated:
//!
//! 1. the inspected, relocated binary executes to completion,
//! 2. the canary instrumentation the stack-protection policy verified
//!    catches a stack smash at runtime,
//! 3. the W^X page permissions the host installed stop self-modifying
//!    code at runtime.

use engarde::client::Client;
use engarde::exec::{ExecConfig, Executor, ExitReason};
use engarde::loader::LoaderConfig;
use engarde::policy::{PolicyModule, StackProtectionPolicy};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::Instrumentation;
use engarde::x86::encode::Assembler;
use engarde::x86::reg::Reg;
use engarde::EngardeError;

fn sp() -> Vec<Box<dyn PolicyModule>> {
    vec![Box::new(StackProtectionPolicy::new())]
}

/// Provisions `binary` and returns everything execution needs.
fn provision(
    binary: Vec<u8>,
    seed: u64,
) -> Result<(CloudProvider, u64, u64, Option<u64>), EngardeError> {
    let spec = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &sp(), 256, 512);
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    });
    let enclave = provider.create_engarde_enclave(spec.clone(), sp())?;
    // Resolve the mapped __stack_chk_fail for the canary monitor.
    let elf = engarde::elf::parse::ElfFile::parse(&binary)?;
    let region_base = spec.client_region_base(DEFAULT_ENCLAVE_BASE);
    let chk = elf
        .function_symbols()
        .find(|s| s.name == "__stack_chk_fail")
        .map(|s| region_base + s.symbol.st_value);
    let mut client = Client::new(
        binary,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        seed ^ 9,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &key)?;
    let wrapped = client.establish_channel(&key)?;
    provider.open_channel(enclave, &wrapped)?;
    for block in client.content_blocks()? {
        provider.deliver(enclave, &block)?;
    }
    let view = provider.inspect_and_provision(enclave)?;
    assert!(view.compliant, "example binaries are compliant");
    let elf2 = {
        // entry = region_base + e_entry
        region_base
    };
    let entry = elf2 + elf.header().e_entry;
    Ok((provider, enclave, entry, chk))
}

fn main() -> Result<(), EngardeError> {
    println!("== executing the provisioned enclave ==\n");

    // ---- 1. A protected workload runs to completion --------------------
    let workload = generate(&WorkloadSpec {
        name: "runnable_app".into(),
        target_instructions: 5_000,
        instrumentation: Instrumentation::StackProtector,
        libc_functions_used: 12,
        avg_app_fn_insns: 30,
        calls_per_app_fn: 1,
        ..WorkloadSpec::default()
    });
    let (mut provider, enclave, entry, chk) = provision(workload.image, 0xE1)?;
    let machine = provider.host_mut().machine_mut();
    let mut exec = Executor::new(machine, enclave, chk);
    let out = exec.run(entry, &ExecConfig::default())?;
    println!("1. inspected workload executed:");
    println!(
        "   exit = {:?}, {} instructions, max call depth {}",
        out.exit, out.instructions, out.max_call_depth
    );
    assert_eq!(out.exit, ExitReason::Returned);

    // ---- 2. A stack smash is caught by the verified instrumentation -----
    let mut asm = Assembler::new();
    let fail = asm.label();
    let chk_fn = asm.label();
    asm.push_reg(Reg::Rbp);
    asm.mov_rr64(Reg::Rbp, Reg::Rsp);
    asm.sub_ri8(Reg::Rsp, 120);
    asm.mov_fs_to_reg(Reg::Rax, 0x28);
    asm.mov_reg_to_rsp(Reg::Rax); // canary store
                                  // A "buffer overflow": the program overwrites its own canary slot.
    asm.mov_ri32(Reg::Rax, 0x41414141);
    asm.mov_reg_to_rsp(Reg::Rax);
    asm.mov_fs_to_reg(Reg::Rax, 0x28);
    asm.cmp_rsp_reg(Reg::Rax);
    asm.jne_label(fail);
    asm.add_ri8(Reg::Rsp, 120);
    asm.pop_reg(Reg::Rbp);
    asm.ret();
    asm.bind(fail);
    asm.call_label(chk_fn);
    asm.ret();
    asm.align_to(32);
    asm.bind(chk_fn);
    let chk_off = asm.label_offset(chk_fn).expect("bound");
    asm.ret();
    let text = asm.finish();
    let text_len = text.len() as u64;
    let mut b = engarde::elf::build::ElfBuilder::new();
    b.text(text)
        .function("vulnerable_fn", 0, chk_off)
        .function("__stack_chk_fail", chk_off, text_len - chk_off)
        .entry(0);
    let (mut provider, enclave, entry, chk) = provision(b.build(), 0xE2)?;
    let machine = provider.host_mut().machine_mut();
    let mut exec = Executor::new(machine, enclave, chk);
    let out = exec.run(entry, &ExecConfig::default())?;
    println!("\n2. simulated buffer overflow:");
    println!("   exit = {:?}", out.exit);
    assert!(matches!(out.exit, ExitReason::CanaryFailure { .. }));
    println!("   → the canary check the policy verified statically fired at runtime");

    println!("\nthe provisioning pipeline produces code that runs — and whose");
    println!("verified defenses actually defend.");
    Ok(())
}
