//! Attestation deep-dive: what the client's verification actually
//! catches, and why EnGarde needs SGX2.
//!
//! Run with `cargo run --release --example attestation_flow`.
//!
//! Shows (a) the measurement pinning the *policy configuration* — an
//! enclave built with a weaker policy set produces a different
//! measurement and the client walks away; (b) nonce freshness; and
//! (c) the SGX1 page-table attack that motivates the paper's SGX2
//! requirement (§3–4), defeated by EPCM permissions on SGX2.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{IfccPolicy, PolicyModule, StackProtectionPolicy};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::epc::PagePerms;
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::Instrumentation;
use engarde::EngardeError;

fn full_policies() -> Vec<Box<dyn PolicyModule>> {
    vec![
        Box::new(StackProtectionPolicy::new()),
        Box::new(IfccPolicy::new()),
    ]
}

fn weak_policies() -> Vec<Box<dyn PolicyModule>> {
    // A provider quietly dropping the stack-protection module.
    vec![Box::new(IfccPolicy::new())]
}

fn config(version: SgxVersion, seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 1_024,
        version,
        device_key_bits: 512,
        seed,
    }
}

fn main() -> Result<(), EngardeError> {
    println!("== attestation and the SGX2 requirement ==\n");

    let agreed_spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &full_policies(),
        128,
        512,
    );
    let binary = generate(&WorkloadSpec {
        name: "attest_app".into(),
        target_instructions: 10_000,
        instrumentation: Instrumentation::StackProtector,
        ..WorkloadSpec::default()
    });

    // ---- (a) measurement pins the policy set ---------------------------
    // The provider boots EnGarde with a *weaker* policy set than agreed.
    let weak_spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &weak_policies(),
        128,
        512,
    );
    let mut provider = CloudProvider::new(config(SgxVersion::V2, 0x111));
    let enclave = provider.create_engarde_enclave(weak_spec, weak_policies())?;
    let mut client = Client::new(
        binary.image.clone(),
        &agreed_spec, // the client expects the FULL policy set
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        0x222,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    match client.verify_quote(&quote, &key) {
        Err(e) => println!("(a) weakened policy set → attestation fails:\n    {e}\n"),
        Ok(()) => panic!("client accepted an enclave with the wrong policies!"),
    }

    // ---- (b) nonce freshness ------------------------------------------------
    let mut provider = CloudProvider::new(config(SgxVersion::V2, 0x333));
    let enclave = provider.create_engarde_enclave(agreed_spec.clone(), full_policies())?;
    let mut client = Client::new(
        binary.image.clone(),
        &agreed_spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        0x444,
    );
    let old_nonce = client.challenge();
    let old_quote = provider.attest(enclave, old_nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&old_quote, &key)?;
    println!("(b) fresh quote verifies; now the provider replays it against a new challenge…");
    let _new_nonce = client.challenge(); // client refreshes its challenge
    match client.verify_quote(&old_quote, &key) {
        Err(e) => println!("    replayed quote rejected: {e}\n"),
        Ok(()) => panic!("replayed quote accepted!"),
    }

    // ---- (c) SGX1 vs SGX2 after provisioning ------------------------------------
    for version in [SgxVersion::V1, SgxVersion::V2] {
        let mut provider = CloudProvider::new(config(version, 0x555));
        let enclave = provider.create_engarde_enclave(agreed_spec.clone(), full_policies())?;
        let mut client = Client::new(
            binary.image.clone(),
            &agreed_spec,
            DEFAULT_ENCLAVE_BASE,
            provider.device_public_key(),
            0x666,
        );
        let nonce = client.challenge();
        let quote = provider.attest(enclave, nonce)?;
        let key = provider.enclave_public_key(enclave)?;
        client.verify_quote(&quote, &key)?;
        let wrapped = client.establish_channel(&key)?;
        provider.open_channel(enclave, &wrapped)?;
        for block in client.content_blocks()? {
            provider.deliver(enclave, &block)?;
        }
        let view = provider.inspect_and_provision(enclave)?;
        assert!(view.compliant);
        let code_page = view.exec_pages[0];

        // A malicious host flips the page-table entry back to RWX and
        // tries to inject code into the (already inspected) code page.
        let effective = provider
            .host_mut()
            .attack_flip_pte(enclave, code_page, PagePerms::RWX)?;
        println!(
            "(c) {version:?}: after provisioning, host flips PTE to rwx → effective perms {effective}"
        );
        match version {
            SgxVersion::V1 => {
                assert_eq!(effective, PagePerms::RWX);
                println!(
                    "    SGX1: page-table permissions are all there is — the inspected code \
                     page is writable again.\n    This is why the paper requires SGX2."
                );
            }
            SgxVersion::V2 => {
                assert_eq!(effective, PagePerms::RX);
                println!(
                    "    SGX2: the EPCM caps permissions at r-x regardless of page tables — \
                     the attack is dead."
                );
            }
        }
    }
    Ok(())
}
