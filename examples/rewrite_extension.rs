//! The runtime-instrumentation extension in action.
//!
//! Run with `cargo run --release --example rewrite_extension`.
//!
//! The paper (§1): "One can also imagine an extension of EnGarde that
//! instruments client code to enforce policies at runtime, but our
//! current implementation only implements support for static code
//! inspection." This reproduction implements that extension
//! (`engarde_core::rewrite`): with `BootstrapSpec::with_rewriting`, a
//! binary that *fails* the stack-protection policy is rewritten inside
//! the enclave — canary prologue, per-`ret` checks, a synthetic
//! `__stack_chk_fail` — re-inspected, and loaded.
//!
//! Both parties opt in: the flag is part of the bootstrap bytes and
//! therefore of the attested measurement.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{PolicyModule, StackProtectionPolicy};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::Instrumentation;
use engarde::EngardeError;

fn sp() -> Vec<Box<dyn PolicyModule>> {
    vec![Box::new(StackProtectionPolicy::new())]
}

fn provision(
    spec: &BootstrapSpec,
    binary: Vec<u8>,
    seed: u64,
) -> Result<(bool, String), EngardeError> {
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    });
    let enclave = provider.create_engarde_enclave(spec.clone(), sp())?;
    let mut client = Client::new(
        binary,
        spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        seed ^ 3,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &key)?;
    let wrapped = client.establish_channel(&key)?;
    provider.open_channel(enclave, &wrapped)?;
    for block in client.content_blocks()? {
        provider.deliver(enclave, &block)?;
    }
    let view = provider.inspect_and_provision(enclave)?;
    let verdict = provider.signed_verdict(enclave).expect("verdict").clone();
    let agreed = client.verify_verdict(&verdict, &key)?;
    assert_eq!(agreed, view.compliant);
    Ok((view.compliant, verdict.detail))
}

fn main() -> Result<(), EngardeError> {
    println!("== runtime-instrumentation extension ==\n");

    // An unprotected binary (compiled without -fstack-protector).
    let unprotected = generate(&WorkloadSpec {
        name: "legacy_app".into(),
        target_instructions: 10_000,
        instrumentation: Instrumentation::None,
        ..WorkloadSpec::default()
    });

    // Static-inspection-only EnGarde (the paper's implementation):
    let strict = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &sp(), 256, 512);
    let (compliant, detail) = provision(&strict, unprotected.image.clone(), 0x21)?;
    println!("static-only EnGarde  → compliant = {compliant}");
    println!("  verdict: {detail}\n");
    assert!(!compliant);

    // The extension: same policy, rewriting enabled (note: a DIFFERENT
    // measurement — both parties must agree to it).
    let rewriting = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &sp(), 256, 512)
        .with_rewriting();
    assert_ne!(
        strict.expected_measurement(DEFAULT_ENCLAVE_BASE),
        rewriting.expected_measurement(DEFAULT_ENCLAVE_BASE),
        "the rewriting flag is measurement-bound"
    );
    let (compliant, detail) = provision(&rewriting, unprotected.image, 0x22)?;
    println!("rewriting EnGarde    → compliant = {compliant}");
    println!("  verdict: {detail}");
    assert!(compliant);
    assert!(detail.contains("rewritten"));

    println!("\nthe same legacy binary is rejected by static inspection but accepted");
    println!("after in-enclave instrumentation — with zero provider visibility into");
    println!("the code, exactly like the static path.");
    Ok(())
}
