//! Writing a custom policy module.
//!
//! Run with `cargo run --release --example custom_policy`.
//!
//! The paper's introduction motivates provider-side inspection with
//! SLA-violating clients "using [the cloud] to host a botnet command
//! and control server". This example implements exactly that check as a
//! **custom** `PolicyModule` — a network-function blocklist: the
//! enclave's code may not call `socket`, `connect`, `listen`, `accept`,
//! `bind`, … — and runs the full provisioning protocol with it.
//!
//! It also shows that the policy's configuration (the blocklist) is
//! bound into the enclave measurement: provider and client must agree
//! on the exact list or attestation fails.

use engarde::client::Client;
use engarde::error::EngardeError;
use engarde::loader::LoaderConfig;
use engarde::policy::{PolicyContext, PolicyModule, PolicyReport};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::sgx::perf::costs;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::x86::insn::InsnKind;

/// Rejects binaries that call any function on a name blocklist.
#[derive(Clone, Debug)]
struct NetworkBlocklistPolicy {
    forbidden: Vec<&'static str>,
}

impl NetworkBlocklistPolicy {
    fn new() -> Self {
        NetworkBlocklistPolicy {
            forbidden: vec![
                "socket", "bind", "listen", "accept", "connect", "send", "recv", "sendto",
                "recvfrom",
            ],
        }
    }
}

impl PolicyModule for NetworkBlocklistPolicy {
    fn name(&self) -> &'static str {
        "network-blocklist"
    }

    fn descriptor(&self) -> Vec<u8> {
        // The blocklist is part of the agreed configuration: it lands in
        // the enclave measurement via the bootstrap spec.
        let mut out = b"network-blocklist:".to_vec();
        for f in &self.forbidden {
            out.extend_from_slice(f.as_bytes());
            out.push(b',');
        }
        out
    }

    fn check(&self, ctx: &mut PolicyContext<'_>) -> Result<PolicyReport, EngardeError> {
        let binary = ctx.binary();
        ctx.charge(binary.insns.len() as u64 * costs::SCAN_PER_INSN);
        let mut calls_checked = 0usize;
        for insn in &binary.insns {
            let InsnKind::DirectCall { target } = insn.kind else {
                continue;
            };
            calls_checked += 1;
            ctx.charge(costs::HASHTABLE_PROBE);
            if let Some(name) = binary.symbols.name_at(target) {
                if self.forbidden.contains(&name) {
                    return Err(EngardeError::PolicyViolation {
                        policy: self.name(),
                        reason: format!(
                            "call to forbidden network function '{name}' at {:#x}",
                            insn.addr
                        ),
                    });
                }
            }
        }
        Ok(PolicyReport {
            policy: self.name(),
            items_checked: calls_checked,
            detail: format!("{} functions on the blocklist", self.forbidden.len()),
        })
    }
}

fn provision(binary: Vec<u8>, seed: u64) -> Result<(bool, String), EngardeError> {
    let make = || -> Vec<Box<dyn PolicyModule>> { vec![Box::new(NetworkBlocklistPolicy::new())] };
    let spec = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &make(), 256, 512);
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    });
    let enclave = provider.create_engarde_enclave(spec.clone(), make())?;
    let mut client = Client::new(
        binary,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        seed ^ 2,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &key)?;
    let wrapped = client.establish_channel(&key)?;
    provider.open_channel(enclave, &wrapped)?;
    for block in client.content_blocks()? {
        provider.deliver(enclave, &block)?;
    }
    let view = provider.inspect_and_provision(enclave)?;
    let detail = provider
        .signed_verdict(enclave)
        .map(|v| v.detail.clone())
        .unwrap_or_default();
    Ok((view.compliant, detail))
}

/// Does this binary contain a direct call to any of `names`?
fn calls_any(image: &[u8], names: &[&str]) -> bool {
    let elf = engarde::elf::parse::ElfFile::parse(image).expect("parses");
    let text = elf.section(".text").expect(".text");
    let insns = engarde::x86::decode::decode_all(&text.data, text.header.sh_addr).expect("decodes");
    let by_addr: std::collections::HashMap<u64, String> = elf
        .function_symbols()
        .map(|s| (s.symbol.st_value, s.name.clone()))
        .collect();
    insns.iter().any(|i| match i.kind {
        InsnKind::DirectCall { target } => by_addr
            .get(&target)
            .is_some_and(|n| names.contains(&n.as_str())),
        _ => false,
    })
}

fn main() -> Result<(), EngardeError> {
    println!("== custom policy: no network functions in enclave code ==\n");
    let forbidden = [
        "socket", "bind", "listen", "accept", "connect", "send", "recv", "sendto", "recvfrom",
    ];

    // A compute-only app: links a small libc subset (string/stdlib), no
    // networking.
    let quiet = generate(&WorkloadSpec {
        name: "batch_compute".into(),
        target_instructions: 12_000,
        libc_functions_used: 60,
        ..WorkloadSpec::default()
    });
    assert!(!calls_any(&quiet.image, &forbidden));
    let (compliant, detail) = provision(quiet.image, 0xF00)?;
    println!("batch_compute (no sockets) → compliant = {compliant}");
    println!("  verdict: {detail}\n");
    assert!(compliant);

    // A "command and control server": links the full libc including the
    // socket API, and calls it.
    let mut spec = WorkloadSpec {
        name: "c2_server".into(),
        target_instructions: 30_000,
        libc_functions_used: 300, // pulls in the network section
        calls_per_app_fn: 12,
        ..WorkloadSpec::default()
    };
    let mut image = generate(&spec).image;
    // Re-seed until the generated call mix actually exercises a
    // forbidden function (deterministic once found).
    while !calls_any(&image, &forbidden) {
        spec.seed = spec.seed.wrapping_add(1);
        image = generate(&spec).image;
    }
    let (compliant, detail) = provision(image, 0xF01)?;
    println!("c2_server (uses socket API) → compliant = {compliant}");
    println!("  verdict: {detail}\n");
    assert!(!compliant);

    println!("the blocklist is measurement-bound: a provider running a different");
    println!("list produces a different enclave measurement and fails attestation");
    Ok(())
}
