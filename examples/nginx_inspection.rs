//! Inspecting the paper's flagship workload: Nginx under all three
//! policies (one row from each of Figs. 3, 4 and 5).
//!
//! Run with `cargo run --release --example nginx_inspection`.
//!
//! Generates the Nginx-scale binary variant for each policy figure
//! (262,228 / 271,106 / 267,669 instructions — the paper's `#Inst`
//! numbers), runs the full provisioning pipeline, and prints the
//! measured stage costs next to the paper's.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{IfccPolicy, LibraryLinkingPolicy, PolicyModule, StackProtectionPolicy};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::bench_suite::{PaperBenchmark, PolicyFigure};
use engarde::workloads::libc::{Instrumentation, LibcLibrary};
use engarde::EngardeError;

fn policies_for(figure: PolicyFigure) -> Vec<Box<dyn PolicyModule>> {
    match figure {
        PolicyFigure::Fig3LibraryLinking => {
            let lib = LibcLibrary::build(Instrumentation::None);
            vec![Box::new(LibraryLinkingPolicy::new(
                "musl-libc",
                lib.function_hashes(),
            ))]
        }
        PolicyFigure::Fig4StackProtection => vec![Box::new(StackProtectionPolicy::new())],
        PolicyFigure::Fig5Ifcc => vec![Box::new(IfccPolicy::new())],
    }
}

/// Paper values for the Nginx rows: (#inst, disassembly, policy, loading).
fn paper_row(figure: PolicyFigure) -> (usize, u64, u64, u64) {
    match figure {
        PolicyFigure::Fig3LibraryLinking => (262_228, 694_405_019, 1_307_411_662, 128_696),
        PolicyFigure::Fig4StackProtection => (271_106, 719_360_640, 713_772_098, 128_662),
        PolicyFigure::Fig5Ifcc => (267_669, 821_734_999, 20_843_253, 128_668),
    }
}

fn main() -> Result<(), EngardeError> {
    let nginx = PaperBenchmark::by_name("Nginx").expect("nginx in suite");
    println!("== Nginx under EnGarde's three policies ==\n");

    for figure in [
        PolicyFigure::Fig3LibraryLinking,
        PolicyFigure::Fig4StackProtection,
        PolicyFigure::Fig5Ifcc,
    ] {
        let workload = nginx.generate(figure);
        let make = || policies_for(figure);
        let spec = BootstrapSpec::new(
            "EnGarde-1.0",
            LoaderConfig::default(),
            &make(),
            // Nginx's image needs a big client region.
            (workload.image.len() / 4096) * 2 + 64,
            512,
        );
        let mut provider = CloudProvider::new(MachineConfig {
            epc_pages: 8_192,
            version: SgxVersion::V2,
            device_key_bits: 512,
            seed: 0x9147,
        });
        let enclave = provider.create_engarde_enclave(spec.clone(), make())?;
        let mut client = Client::new(
            workload.image,
            &spec,
            DEFAULT_ENCLAVE_BASE,
            provider.device_public_key(),
            1,
        );
        let nonce = client.challenge();
        let quote = provider.attest(enclave, nonce)?;
        let key = provider.enclave_public_key(enclave)?;
        client.verify_quote(&quote, &key)?;
        let wrapped = client.establish_channel(&key)?;
        provider.open_channel(enclave, &wrapped)?;
        for block in client.content_blocks()? {
            provider.deliver(enclave, &block)?;
        }
        let view = provider.inspect_and_provision(enclave)?;
        assert!(view.compliant, "{figure:?} should be compliant");

        let (p_inst, p_dis, p_pol, p_load) = paper_row(figure);
        let s = view.stages;
        println!("{figure:?}");
        println!("              {:>16}  {:>16}", "this repro", "paper");
        println!("  #inst       {:>16} {:>17}", view.instructions, p_inst);
        println!("  disassembly {:>16} {:>17}", s.disassembly, p_dis);
        println!("  policy      {:>16} {:>17}", s.policy_checking, p_pol);
        println!("  loading     {:>16} {:>17}", s.loading_relocation, p_load);
        println!(
            "  policy/disassembly ratio: {:.2} (paper {:.2})\n",
            s.policy_checking as f64 / s.disassembly as f64,
            p_pol as f64 / p_dis as f64,
        );
    }
    Ok(())
}
