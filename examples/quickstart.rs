//! Quickstart: the full EnGarde provisioning flow on a compliant binary.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The provider and client agree on a library-linking policy (code must
//! be linked against musl-libc 1.0.5); the provider boots an EnGarde
//! enclave; the client attests it, ships its binary over the encrypted
//! channel, and EnGarde inspects, loads, and locks it down.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{LibraryLinkingPolicy, PolicyModule};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::epc::PagePerms;
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::{Instrumentation, LibcLibrary};

fn main() -> Result<(), engarde::EngardeError> {
    println!("== EnGarde quickstart ==\n");

    // ---- 1. The agreed policy set ------------------------------------
    let make_policies = || -> Vec<Box<dyn PolicyModule>> {
        let lib = LibcLibrary::build(Instrumentation::None);
        vec![Box::new(LibraryLinkingPolicy::new(
            "musl-libc",
            lib.function_hashes(),
        ))]
    };
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &make_policies(),
        128,
        1024,
    );
    println!(
        "agreed policy set: {:?} ({} bootstrap pages, {} client-region pages)",
        spec.policy_descriptors
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>(),
        spec.bootstrap_pages(),
        spec.client_region_pages,
    );

    // ---- 2. Provider boots the EnGarde enclave -------------------------
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 1024,
        seed: 0xC10D,
    });
    let enclave = provider.create_engarde_enclave(spec.clone(), make_policies())?;
    println!("provider: EnGarde enclave {enclave} created and initialized");

    // ---- 3. Client builds its binary and attests the enclave -----------
    let workload = generate(&WorkloadSpec {
        name: "quickstart_app".into(),
        target_instructions: 20_000,
        ..WorkloadSpec::default()
    });
    println!(
        "client: binary ready ({} instructions, {} bytes, {} libc functions linked)",
        workload.stats.instructions,
        workload.image.len(),
        workload.stats.libc_functions,
    );
    let mut client = Client::new(
        workload.image,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        0xC11E,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let enclave_key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &enclave_key)?;
    println!("client: quote verified (measurement {})", quote.measurement);

    // ---- 4. Encrypted channel + content transfer -----------------------
    let wrapped = client.establish_channel(&enclave_key)?;
    provider.open_channel(enclave, &wrapped)?;
    let blocks = client.content_blocks()?;
    println!("client: sending {} encrypted blocks", blocks.len());
    for block in &blocks {
        provider.deliver(enclave, block)?;
    }

    // ---- 5. Inspection -------------------------------------------------
    let view = provider.inspect_and_provision(enclave)?;
    println!("\nprovider sees: compliant = {}", view.compliant);
    println!(
        "provider sees: {} executable pages {:x?}...",
        view.exec_pages.len(),
        &view.exec_pages[..view.exec_pages.len().min(4)]
    );
    let s = view.stages;
    println!("\nprovisioning-stage cycle costs (paper's cost model):");
    println!("  receive+decrypt      {:>14} cycles", s.receive_decrypt);
    println!("  disassembly          {:>14} cycles", s.disassembly);
    println!("  policy checking      {:>14} cycles", s.policy_checking);
    println!("  loading+relocation   {:>14} cycles", s.loading_relocation);
    println!(
        "  total                {:>14} cycles = {:.2} ms at 3.5 GHz",
        s.total(),
        s.total() as f64 / 3.5e6
    );

    // ---- 6. Client verifies the signed verdict --------------------------
    let verdict = provider
        .signed_verdict(enclave)
        .expect("verdict recorded")
        .clone();
    let compliant = client.verify_verdict(&verdict, &enclave_key)?;
    println!("\nclient: verified enclave-signed verdict: compliant = {compliant}");
    println!("client: verdict detail: {}", verdict.detail);

    // ---- 7. The host's enforcement is in place ----------------------------
    let host = provider.host();
    let code_page = view.exec_pages[0];
    let perms = host.effective_perms(enclave, code_page).expect("mapped");
    println!("\nhost: code page {code_page:#x} is now {perms} (W^X locked)");
    assert_eq!(perms, PagePerms::RX);
    assert!(host.is_extension_locked(enclave));
    println!("host: enclave extension locked — no code can be injected after inspection");
    Ok(())
}
