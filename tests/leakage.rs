//! Confidentiality: what each party can and cannot see.
//!
//! The paper's threat model (§3): the client's content must not be
//! revealed to the cloud provider; "the only explicit communication
//! between EnGarde and the cloud provider must be to inform the cloud
//! provider about policy compliance and to identify the virtual
//! addresses of the pages that contain the client's code".

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{LibraryLinkingPolicy, PolicyModule};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::{EnclaveId, MachineConfig};
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::{Instrumentation, LibcLibrary};

fn musl_policy() -> Vec<Box<dyn PolicyModule>> {
    let lib = LibcLibrary::build(Instrumentation::None);
    vec![Box::new(LibraryLinkingPolicy::new(
        "musl-libc",
        lib.function_hashes(),
    ))]
}

fn run_protocol() -> (CloudProvider, EnclaveId, Vec<u8>, Vec<Vec<u8>>) {
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &musl_policy(),
        256,
        512,
    );
    let binary = generate(&WorkloadSpec {
        target_instructions: 8_000,
        ..WorkloadSpec::default()
    });
    let image = binary.image.clone();
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed: 0x1EAC,
    });
    let enclave = provider
        .create_engarde_enclave(spec.clone(), musl_policy())
        .expect("create");
    let mut client = Client::new(
        binary.image,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        3,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce).expect("attest");
    let key = provider.enclave_public_key(enclave).expect("key");
    client.verify_quote(&quote, &key).expect("quote");
    let wrapped = client.establish_channel(&key).expect("channel");
    provider.open_channel(enclave, &wrapped).expect("open");
    let mut wire: Vec<Vec<u8>> = Vec::new();
    for block in client.content_blocks().expect("blocks") {
        wire.push(block.to_bytes()); // what the provider/network observes
        provider.deliver(enclave, &block).expect("deliver");
    }
    (provider, enclave, image, wire)
}

/// Returns true when `needle` occurs in `haystack`.
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[test]
fn wire_traffic_does_not_contain_plaintext_content() {
    let (_, _, image, wire) = run_protocol();
    // Pick distinctive plaintext snippets from the client binary.
    let elf = engarde::elf::parse::ElfFile::parse(&image).expect("parses");
    let text = &elf.section(".text").expect(".text").data;
    let probe = &text[100..164];
    for (i, message) in wire.iter().enumerate() {
        assert!(
            !contains(message, probe),
            "wire message {i} leaks plaintext code"
        );
        assert!(
            !contains(message, b"\x7fELF"),
            "wire message {i} leaks the ELF header"
        );
    }
}

#[test]
fn adversary_memory_view_is_ciphertext() {
    let (provider, enclave, image, _) = run_protocol();
    let view = {
        let mut p = provider;
        p.inspect_and_provision(enclave).expect("inspect")
    };
    assert!(view.compliant);
    // The machine's bus-level view of any client code page must not
    // reveal the code bytes.
    // (Re-run the protocol because inspect consumed the provider above.)
    let (mut provider, enclave, _, _) = run_protocol();
    let view = provider.inspect_and_provision(enclave).expect("inspect");
    let elf = engarde::elf::parse::ElfFile::parse(&image).expect("parses");
    let text = &elf.section(".text").expect(".text").data;
    let machine = provider.host().machine();
    let code_page = view.exec_pages[0];
    let bus_view = machine
        .adversary_read_page(enclave, code_page)
        .expect("adversary read");
    let plain = machine
        .enclave_read(enclave, code_page, 4096)
        .expect("in-enclave read");
    assert_ne!(bus_view, plain, "EPC must be encrypted at rest");
    assert!(
        !contains(&bus_view, &text[..64.min(text.len())]),
        "bus view leaks client code"
    );
}

#[test]
fn provider_view_is_only_verdict_and_code_pages() {
    let (mut provider, enclave, _, _) = run_protocol();
    let view = provider.inspect_and_provision(enclave).expect("inspect");
    // This is a *type-level* contract: ProviderView has exactly these
    // fields. The assertions below destructure it exhaustively, so adding
    // a leaky field breaks this test at compile time.
    let engarde::provider::ProviderView {
        compliant,
        exec_pages,
        stages,
        instructions,
        cache_hit,
        taint,
    } = view;
    assert!(compliant);
    assert!(!exec_pages.is_empty());
    assert!(stages.total() > 0);
    assert!(instructions > 0);
    // The cache-hit bit is timing-observable by the provider regardless
    // (a hit's inspection is orders of magnitude shorter), so surfacing
    // it leaks nothing the cycle counts don't already.
    assert!(!cache_hit, "no cache attached in this protocol run");
    // TaintStats is aggregate counters only (counts and cycles, no
    // finding addresses) — audited when the field was added. No
    // taint-backed policy runs under the library-linking regime, so
    // this protocol run carries none.
    assert!(taint.is_none(), "library-linking regime runs no taint pass");
}

#[test]
fn spill_laundered_leak_is_rejected_end_to_end_with_aggregate_stats_only() {
    // The PR-10 soundness fixture, run through the full protocol: a
    // secret spilled to the stack, laundered out of its register, and
    // reloaded into an out-of-enclave store must yield a non-compliant
    // verdict — and the provider's view of the rejection stays
    // aggregate counters, never finding addresses.
    use engarde::policy::{SecretDependentBranch, SecretLeakage};
    use engarde::workloads::adversarial;
    fn taint_policies() -> Vec<Box<dyn PolicyModule>> {
        vec![
            Box::new(SecretLeakage::new()),
            Box::new(SecretDependentBranch::new()),
        ]
    }
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &taint_policies(),
        64,
        512,
    );
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 1_024,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed: 0x1EAE,
    });
    // The provisioning enclave's channel-key state lives at base+0x100;
    // 0x200000 is outside anything this spec can map.
    let leak = adversarial::stack_spill_leak(DEFAULT_ENCLAVE_BASE + 0x100, 0x0020_0000);
    let twin =
        adversarial::stack_spill_leak(DEFAULT_ENCLAVE_BASE + 0x100, DEFAULT_ENCLAVE_BASE + 0x108);
    let mut views = Vec::new();
    for image in [leak, twin] {
        let enclave = provider
            .create_engarde_enclave(spec.clone(), taint_policies())
            .expect("create");
        let mut client = Client::new(
            image,
            &spec,
            DEFAULT_ENCLAVE_BASE,
            provider.device_public_key(),
            9,
        );
        let nonce = client.challenge();
        let quote = provider.attest(enclave, nonce).expect("attest");
        let key = provider.enclave_public_key(enclave).expect("key");
        client.verify_quote(&quote, &key).expect("quote");
        let wrapped = client.establish_channel(&key).expect("channel");
        provider.open_channel(enclave, &wrapped).expect("open");
        for block in client.content_blocks().expect("blocks") {
            provider.deliver(enclave, &block).expect("deliver");
        }
        let view = provider.inspect_and_provision(enclave).expect("inspect");
        provider.close_session(enclave).expect("close");
        views.push(view);
    }
    let (rejected, passed) = (&views[0], &views[1]);
    assert!(!rejected.compliant, "the spill-laundered leak must reject");
    let stats = rejected.taint.as_ref().expect("taint ran");
    assert!(stats.leaks_found >= 1);
    assert!(stats.spill_cells >= 1, "the spill slot was tracked");
    assert_eq!(stats.unresolved_store_sinks, 0);
    assert!(passed.compliant, "the in-enclave twin must provision");
    assert_eq!(passed.taint.as_ref().expect("taint ran").leaks_found, 0);
}

#[test]
fn distinct_clients_produce_unlinkable_wire_traffic() {
    // The same binary provisioned twice produces different ciphertexts
    // (fresh session keys), so the provider cannot correlate content.
    let (_, _, _, wire1) = run_protocol();
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &musl_policy(),
        256,
        512,
    );
    let binary = generate(&WorkloadSpec {
        target_instructions: 8_000,
        ..WorkloadSpec::default()
    });
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed: 0x1EAD, // different machine
    });
    let enclave = provider
        .create_engarde_enclave(spec.clone(), musl_policy())
        .expect("create");
    let mut client = Client::new(
        binary.image,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        4,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce).expect("attest");
    let key = provider.enclave_public_key(enclave).expect("key");
    client.verify_quote(&quote, &key).expect("quote");
    let wrapped = client.establish_channel(&key).expect("channel");
    provider.open_channel(enclave, &wrapped).expect("open");
    let wire2: Vec<Vec<u8>> = client
        .content_blocks()
        .expect("blocks")
        .iter()
        .map(|b| b.to_bytes())
        .collect();
    // Same plaintext pages, different ciphertexts.
    for (a, b) in wire1.iter().zip(wire2.iter()) {
        assert_ne!(a, b, "ciphertexts must not repeat across sessions");
    }
}
