//! Multiple clients provisioning enclaves on one provider machine:
//! sessions, channels, verdicts, and page permissions stay isolated.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{LibraryLinkingPolicy, PolicyModule, StackProtectionPolicy};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::{EnclaveId, MachineConfig};
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::{Instrumentation, LibcLibrary};
use engarde::EngardeError;

fn musl() -> Vec<Box<dyn PolicyModule>> {
    let lib = LibcLibrary::build(Instrumentation::None);
    vec![Box::new(LibraryLinkingPolicy::new(
        "musl-libc",
        lib.function_hashes(),
    ))]
}

fn sp() -> Vec<Box<dyn PolicyModule>> {
    vec![Box::new(StackProtectionPolicy::new())]
}

struct Tenant {
    client: Client,
    enclave: EnclaveId,
}

fn attach(
    provider: &mut CloudProvider,
    spec: &BootstrapSpec,
    policies: Vec<Box<dyn PolicyModule>>,
    binary: Vec<u8>,
    seed: u64,
) -> Result<Tenant, EngardeError> {
    let enclave = provider.create_engarde_enclave(spec.clone(), policies)?;
    let mut client = Client::new(
        binary,
        spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        seed,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &key)?;
    let wrapped = client.establish_channel(&key)?;
    provider.open_channel(enclave, &wrapped)?;
    Ok(Tenant { client, enclave })
}

#[test]
fn two_tenants_interleaved_with_different_policies_and_verdicts() {
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 4_096,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed: 0x7E2A,
    });
    // Tenant A: musl policy, compliant binary.
    let spec_a = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &musl(), 128, 512);
    let bin_a = generate(&WorkloadSpec {
        name: "tenant_a".into(),
        target_instructions: 7_000,
        ..WorkloadSpec::default()
    });
    let mut a = attach(&mut provider, &spec_a, musl(), bin_a.image, 0xA1).expect("tenant A");

    // Tenant B: stack-protection policy, *non-compliant* (plain) binary.
    let spec_b = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &sp(), 128, 512);
    let bin_b = generate(&WorkloadSpec {
        name: "tenant_b".into(),
        target_instructions: 7_000,
        instrumentation: Instrumentation::None,
        seed: 0xB0,
        ..WorkloadSpec::default()
    });
    let mut b = attach(&mut provider, &spec_b, sp(), bin_b.image, 0xB1).expect("tenant B");

    // Interleave the two transfers block by block.
    let blocks_a = a.client.content_blocks().expect("A blocks");
    let blocks_b = b.client.content_blocks().expect("B blocks");
    let mut ia = blocks_a.iter();
    let mut ib = blocks_b.iter();
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => break,
            (xa, xb) => {
                if let Some(block) = xa {
                    provider.deliver(a.enclave, block).expect("deliver A");
                }
                if let Some(block) = xb {
                    provider.deliver(b.enclave, block).expect("deliver B");
                }
            }
        }
    }

    let view_a = provider
        .inspect_and_provision(a.enclave)
        .expect("inspect A");
    let view_b = provider
        .inspect_and_provision(b.enclave)
        .expect("inspect B");
    assert!(view_a.compliant, "A is compliant");
    assert!(!view_b.compliant, "B is rejected");

    // Each client sees and verifies its own verdict; cross-verification
    // fails (wrong key and wrong digest).
    let key_a = provider.enclave_public_key(a.enclave).expect("key A");
    let key_b = provider.enclave_public_key(b.enclave).expect("key B");
    let verdict_a = provider
        .signed_verdict(a.enclave)
        .expect("verdict A")
        .clone();
    let verdict_b = provider
        .signed_verdict(b.enclave)
        .expect("verdict B")
        .clone();
    assert!(a.client.verify_verdict(&verdict_a, &key_a).expect("A ok"));
    assert!(!b.client.verify_verdict(&verdict_b, &key_b).expect("B ok"));
    assert!(a.client.verify_verdict(&verdict_b, &key_b).is_err());
    assert!(b.client.verify_verdict(&verdict_a, &key_a).is_err());

    // Host state: A locked with W^X, B never finalized.
    assert!(provider.host().is_extension_locked(a.enclave));
    assert!(!provider.host().is_extension_locked(b.enclave));
    for &page in &view_a.exec_pages {
        assert!(provider
            .host()
            .effective_perms(a.enclave, page)
            .expect("mapped")
            .is_wx_exclusive());
    }
}

#[test]
fn cross_tenant_block_delivery_fails_authentication() {
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 4_096,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed: 0x7E2B,
    });
    let spec = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &musl(), 128, 512);
    let bin = generate(&WorkloadSpec {
        target_instructions: 7_000,
        ..WorkloadSpec::default()
    });
    let mut a = attach(&mut provider, &spec, musl(), bin.image.clone(), 0xA2).expect("A");
    let b = attach(&mut provider, &spec, musl(), bin.image, 0xB2).expect("B");
    // A's first block delivered to B's enclave: wrong session keys.
    let blocks = a.client.content_blocks().expect("blocks");
    let err = provider.deliver(b.enclave, &blocks[0]).unwrap_err();
    assert!(matches!(
        err,
        EngardeError::Crypto(engarde::crypto::CryptoError::AuthenticationFailed)
    ));
}
