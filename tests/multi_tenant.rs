//! Multi-tenant provisioning through the `engarde-serve` service layer:
//! a mixed fleet of compliant and hostile tenants runs end-to-end, with
//! adversarial sessions rejected by signed verdict and zero cross-tenant
//! leakage (per-session measurements, channel keys, and verdicts all
//! stay distinct and bound to their own tenant).

use engarde::crypto::CryptoError;
use engarde::provider::CloudProvider;
use engarde::provision::DEFAULT_ENCLAVE_BASE;
use engarde::serve::service::{ProvisioningService, SchedMode, ServiceConfig};
use engarde::serve::{regimes, SessionOutcome, SessionRunConfig};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::traffic::{mixed_traffic, ExpectedOutcome, TrafficSpec};
use engarde::EngardeError;
use std::collections::HashSet;
use std::sync::Arc;

fn machine(seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 4_096,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    }
}

#[test]
fn mixed_tenant_fleet_isolates_sessions_and_rejects_adversaries() {
    let musl = Arc::new(regimes::musl_hashes());
    let traffic = mixed_traffic(&TrafficSpec {
        sessions: 8,
        scale_percent: 3,
        adversarial_every: 3,
        stall_every: 0,
        seed: 0x3E2A,
    });
    assert!(traffic
        .iter()
        .any(|t| t.expected == ExpectedOutcome::Rejected));

    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_500_000,
        },
        machine: machine(0x3E2A),
        queue_capacity: 16,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: None,
        store: None,
        batch: None,
        steal: true,
    });
    for item in &traffic {
        svc.submit(regimes::request_for(item, &musl))
            .expect("admit");
    }
    let result = svc.drain();
    assert_eq!(result.reports.len(), traffic.len());

    // Every session ends exactly as the traffic mix predicts, and every
    // verdict carries a signature the tenant's own client accepted.
    for (item, report) in traffic.iter().zip(&result.reports) {
        assert_eq!(report.name, item.name);
        match item.expected {
            ExpectedOutcome::Compliant => {
                assert_eq!(
                    report.outcome,
                    SessionOutcome::Compliant,
                    "{} must pass inspection",
                    item.name
                );
            }
            ExpectedOutcome::Rejected => {
                assert_eq!(
                    report.outcome,
                    SessionOutcome::NonCompliant,
                    "{} must be rejected by signed verdict",
                    item.name
                );
            }
            ExpectedOutcome::Evicted => unreachable!("no stalls in this mix"),
        }
        let verdict = report.verdict.as_ref().expect("verdict present");
        assert_eq!(
            verdict.compliant,
            report.outcome == SessionOutcome::Compliant
        );
        assert!(
            report.client_verified,
            "{}: tenant must accept its verdict signature",
            item.name
        );
        // The attested measurement is the one this tenant's agreed spec
        // predicts — not some other tenant's enclave.
        let expected = regimes::spec_for(item.image.len(), item.regime, &musl)
            .expected_measurement(DEFAULT_ENCLAVE_BASE);
        assert_eq!(
            report.measurement,
            Some(expected),
            "{}: measurement bound to own spec",
            item.name
        );
    }

    // No cross-tenant leakage: channel identities (enclave key
    // fingerprints), verdict signatures, and verdict content digests are
    // pairwise distinct.
    let fps: HashSet<_> = result
        .reports
        .iter()
        .map(|r| r.enclave_key_fp.expect("attested key"))
        .collect();
    assert_eq!(
        fps.len(),
        traffic.len(),
        "every tenant gets a fresh channel key"
    );
    let sigs: HashSet<_> = result
        .reports
        .iter()
        .map(|r| r.verdict.as_ref().expect("verdict").signature.clone())
        .collect();
    assert_eq!(sigs.len(), traffic.len(), "verdict signatures never repeat");
    let digests: HashSet<_> = result
        .reports
        .iter()
        .map(|r| {
            *r.verdict
                .as_ref()
                .expect("verdict")
                .content_digest
                .as_bytes()
        })
        .collect();
    assert_eq!(
        digests.len(),
        traffic.len(),
        "verdicts bind distinct content"
    );

    // Service-level accounting matches the mix.
    let m = result.metrics.counters();
    let expected_rejections = traffic
        .iter()
        .filter(|t| t.expected == ExpectedOutcome::Rejected)
        .count() as u64;
    assert_eq!(m.completed, traffic.len() as u64);
    assert_eq!(m.noncompliant, expected_rejections);
    assert_eq!(m.compliant, traffic.len() as u64 - expected_rejections);
    assert_eq!(m.evicted, 0);

    // After drain with recycling on, no shard retains sessions or EPC
    // pages: tenants cannot observe each other through residue.
    for shard in &result.shards {
        assert_eq!(shard.provider().session_count(), 0);
        assert_eq!(shard.provider().host().machine().epc_used_pages(), 0);
    }
}

#[test]
fn threaded_tenants_complete_with_isolated_channels() {
    let musl = Arc::new(regimes::musl_hashes());
    let traffic = mixed_traffic(&TrafficSpec {
        sessions: 4,
        scale_percent: 3,
        adversarial_every: 4,
        stall_every: 0,
        seed: 0x7D11,
    });
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::Threaded,
        machine: machine(0x7D11),
        queue_capacity: 8,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: None,
        store: None,
        batch: None,
        steal: true,
    });
    for item in &traffic {
        svc.submit(regimes::request_for(item, &musl))
            .expect("admit");
    }
    let result = svc.drain();
    assert_eq!(result.reports.len(), 4);
    assert!(result.reports.iter().all(|r| r.reached_verdict()));
    assert!(result.reports.iter().all(|r| r.client_verified));
    let fps: HashSet<_> = result
        .reports
        .iter()
        .map(|r| r.enclave_key_fp.expect("attested"))
        .collect();
    assert_eq!(fps.len(), 4, "distinct channel keys across worker threads");
    // The mix's one adversarial session is rejected even under real
    // thread interleaving.
    assert!(result
        .reports
        .iter()
        .any(|r| r.outcome == SessionOutcome::NonCompliant));
}

#[test]
fn cross_tenant_block_delivery_fails_authentication() {
    // Provider-level isolation: a block sealed for tenant A's enclave is
    // cryptographically useless against tenant B's.
    let musl = Arc::new(regimes::musl_hashes());
    let traffic = mixed_traffic(&TrafficSpec {
        sessions: 2,
        scale_percent: 3,
        adversarial_every: 0,
        stall_every: 0,
        seed: 0x7E2B,
    });
    let mut provider = CloudProvider::new(machine(0x7E2B));
    let req_a = regimes::request_for(&traffic[0], &musl);
    let req_b = regimes::request_for(&traffic[1], &musl);
    let mut fsm_a = engarde::serve::SessionFsm::create(&mut provider, &req_a).expect("A");
    let mut fsm_b = engarde::serve::SessionFsm::create(&mut provider, &req_b).expect("B");
    fsm_a.attest(&mut provider).expect("attest A");
    fsm_b.attest(&mut provider).expect("attest B");
    fsm_a.open_channel(&mut provider).expect("channel A");
    fsm_b.open_channel(&mut provider).expect("channel B");
    let blocks_a = fsm_a.content_blocks().expect("blocks A");
    // A's first block delivered into B's enclave: wrong session keys.
    let err = fsm_b.deliver(&mut provider, &blocks_a[0]).unwrap_err();
    assert!(matches!(
        err,
        engarde::serve::ServeError::Engarde(EngardeError::Crypto(
            CryptoError::AuthenticationFailed
        ))
    ));
}
