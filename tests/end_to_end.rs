//! Cross-crate integration: the full provisioning protocol, end to end,
//! across policies and policy combinations.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{IfccPolicy, LibraryLinkingPolicy, PolicyModule, StackProtectionPolicy};
use engarde::provider::{CloudProvider, ProviderView};
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::epc::PagePerms;
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::{Instrumentation, LibcLibrary};
use engarde::EngardeError;

fn machine_config(seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    }
}

/// Full protocol; returns the provider view and whether the client's
/// verdict verification agreed.
fn provision(
    binary: Vec<u8>,
    make_policies: &dyn Fn() -> Vec<Box<dyn PolicyModule>>,
    seed: u64,
) -> Result<(ProviderView, bool), EngardeError> {
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &make_policies(),
        256,
        512,
    );
    let mut provider = CloudProvider::new(machine_config(seed));
    let enclave = provider.create_engarde_enclave(spec.clone(), make_policies())?;
    let mut client = Client::new(
        binary,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        seed ^ 0xFF,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce)?;
    let key = provider.enclave_public_key(enclave)?;
    client.verify_quote(&quote, &key)?;
    let wrapped = client.establish_channel(&key)?;
    provider.open_channel(enclave, &wrapped)?;
    for block in client.content_blocks()? {
        provider.deliver(enclave, &block)?;
    }
    let view = provider.inspect_and_provision(enclave)?;
    let verdict = provider.signed_verdict(enclave).expect("verdict").clone();
    let agreed = client.verify_verdict(&verdict, &key)?;
    Ok((view, agreed))
}

fn musl_policy() -> Vec<Box<dyn PolicyModule>> {
    let lib = LibcLibrary::build(Instrumentation::None);
    vec![Box::new(LibraryLinkingPolicy::new(
        "musl-libc",
        lib.function_hashes(),
    ))]
}

#[test]
fn compliant_binary_all_single_policies() {
    // Library linking on a plain build.
    let plain = generate(&WorkloadSpec {
        target_instructions: 10_000,
        ..WorkloadSpec::default()
    });
    let (view, agreed) = provision(plain.image, &musl_policy, 1).expect("protocol");
    assert!(view.compliant);
    assert!(agreed);
    assert!(!view.exec_pages.is_empty());
    assert_eq!(view.instructions, 10_000);

    // Stack protection on a protected build.
    let protected = generate(&WorkloadSpec {
        target_instructions: 10_000,
        instrumentation: Instrumentation::StackProtector,
        ..WorkloadSpec::default()
    });
    let sp = || -> Vec<Box<dyn PolicyModule>> { vec![Box::new(StackProtectionPolicy::new())] };
    let (view, agreed) = provision(protected.image, &sp, 2).expect("protocol");
    assert!(view.compliant && agreed);

    // IFCC on an instrumented build.
    let ifcc = generate(&WorkloadSpec {
        target_instructions: 10_000,
        instrumentation: Instrumentation::Ifcc,
        ..WorkloadSpec::default()
    });
    let ip = || -> Vec<Box<dyn PolicyModule>> { vec![Box::new(IfccPolicy::new())] };
    let (view, agreed) = provision(ifcc.image, &ip, 3).expect("protocol");
    assert!(view.compliant && agreed);
}

#[test]
fn multi_policy_combination() {
    // Stack protection + IFCC: needs a build carrying both... our
    // generator applies one instrumentation at a time, so combine
    // stack-protection with the vacuous IFCC check (no indirect calls).
    let protected = generate(&WorkloadSpec {
        target_instructions: 9_000,
        instrumentation: Instrumentation::StackProtector,
        ..WorkloadSpec::default()
    });
    let both = || -> Vec<Box<dyn PolicyModule>> {
        vec![
            Box::new(StackProtectionPolicy::new()),
            Box::new(IfccPolicy::new()),
        ]
    };
    let (view, agreed) = provision(protected.image, &both, 4).expect("protocol");
    assert!(view.compliant && agreed);
}

#[test]
fn multi_policy_fails_if_any_policy_fails() {
    // A plain build passes IFCC (vacuously) but fails stack protection.
    let plain = generate(&WorkloadSpec {
        target_instructions: 9_000,
        ..WorkloadSpec::default()
    });
    let both = || -> Vec<Box<dyn PolicyModule>> {
        vec![
            Box::new(IfccPolicy::new()),
            Box::new(StackProtectionPolicy::new()),
        ]
    };
    let (view, agreed) = provision(plain.image, &both, 5).expect("protocol");
    assert!(!view.compliant);
    assert!(!agreed);
    assert!(view.exec_pages.is_empty());
}

#[test]
fn host_enforcement_after_compliance() {
    let spec_policies = musl_policy;
    let binary = generate(&WorkloadSpec {
        target_instructions: 8_000,
        ..WorkloadSpec::default()
    });
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &spec_policies(),
        256,
        512,
    );
    let mut provider = CloudProvider::new(machine_config(6));
    let enclave = provider
        .create_engarde_enclave(spec.clone(), spec_policies())
        .expect("create");
    let mut client = Client::new(
        binary.image,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        66,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce).expect("attest");
    let key = provider.enclave_public_key(enclave).expect("key");
    client.verify_quote(&quote, &key).expect("quote ok");
    let wrapped = client.establish_channel(&key).expect("channel");
    provider.open_channel(enclave, &wrapped).expect("open");
    for block in client.content_blocks().expect("blocks") {
        provider.deliver(enclave, &block).expect("deliver");
    }
    let view = provider.inspect_and_provision(enclave).expect("inspect");
    assert!(view.compliant);

    let host = provider.host();
    // W^X: every exec page is r-x, and extension is locked.
    for &page in &view.exec_pages {
        assert_eq!(host.effective_perms(enclave, page), Some(PagePerms::RX));
    }
    assert!(host.is_extension_locked(enclave));

    // The mapped entry point contains the client's entry instruction.
    let machine = provider.host().machine();
    let some_code = machine
        .enclave_read(enclave, view.exec_pages[0], 4)
        .expect("read mapped code");
    assert_ne!(some_code, vec![0, 0, 0, 0], "code actually landed");
}

#[test]
fn incomplete_transfer_is_a_protocol_error() {
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &musl_policy(),
        256,
        512,
    );
    let binary = generate(&WorkloadSpec {
        target_instructions: 8_000,
        ..WorkloadSpec::default()
    });
    let mut provider = CloudProvider::new(machine_config(7));
    let enclave = provider
        .create_engarde_enclave(spec.clone(), musl_policy())
        .expect("create");
    let mut client = Client::new(
        binary.image,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        77,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce).expect("attest");
    let key = provider.enclave_public_key(enclave).expect("key");
    client.verify_quote(&quote, &key).expect("quote");
    let wrapped = client.establish_channel(&key).expect("channel");
    provider.open_channel(enclave, &wrapped).expect("open");
    let blocks = client.content_blocks().expect("blocks");
    // Drop the last page.
    for block in &blocks[..blocks.len() - 1] {
        provider.deliver(enclave, block).expect("deliver");
    }
    let err = provider.inspect_and_provision(enclave).unwrap_err();
    assert!(matches!(err, EngardeError::Protocol { .. }));
}

#[test]
fn provider_with_mismatched_policies_is_refused() {
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &musl_policy(),
        256,
        512,
    );
    let mut provider = CloudProvider::new(machine_config(8));
    // Provider tries to instantiate different modules than agreed.
    let wrong: Vec<Box<dyn PolicyModule>> = vec![Box::new(IfccPolicy::new())];
    let err = provider.create_engarde_enclave(spec, wrong).unwrap_err();
    assert!(matches!(err, EngardeError::Protocol { .. }));
}

#[test]
fn tampered_block_in_transit_detected() {
    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &musl_policy(),
        256,
        512,
    );
    let binary = generate(&WorkloadSpec {
        target_instructions: 8_000,
        ..WorkloadSpec::default()
    });
    let mut provider = CloudProvider::new(machine_config(9));
    let enclave = provider
        .create_engarde_enclave(spec.clone(), musl_policy())
        .expect("create");
    let mut client = Client::new(
        binary.image,
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        99,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce).expect("attest");
    let key = provider.enclave_public_key(enclave).expect("key");
    client.verify_quote(&quote, &key).expect("quote");
    let wrapped = client.establish_channel(&key).expect("channel");
    provider.open_channel(enclave, &wrapped).expect("open");
    let mut blocks = client.content_blocks().expect("blocks");
    // The provider (or the network) flips a ciphertext bit.
    blocks[1].ciphertext[0] ^= 1;
    provider.deliver(enclave, &blocks[0]).expect("manifest ok");
    let err = provider.deliver(enclave, &blocks[1]).unwrap_err();
    assert!(matches!(
        err,
        EngardeError::Crypto(engarde::crypto::CryptoError::AuthenticationFailed)
    ));
}
