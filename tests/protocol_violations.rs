//! Protocol-order and framing violations: every out-of-order or
//! malformed interaction must fail closed.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{IfccPolicy, PolicyModule};
use engarde::protocol::{ContentManifest, PageKind, PagePayload};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::EngardeError;

fn policies() -> Vec<Box<dyn PolicyModule>> {
    vec![Box::new(IfccPolicy::new())]
}

fn spec() -> BootstrapSpec {
    BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &policies(),
        128,
        512,
    )
}

fn provider(seed: u64) -> CloudProvider {
    CloudProvider::new(MachineConfig {
        epc_pages: 1_024,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    })
}

fn binary() -> Vec<u8> {
    generate(&WorkloadSpec {
        target_instructions: 6_000,
        ..WorkloadSpec::default()
    })
    .image
}

#[test]
fn content_before_channel_is_refused() {
    let mut p = provider(1);
    let id = p
        .create_engarde_enclave(spec(), policies())
        .expect("create");
    // Craft a syntactically-valid sealed block with a random key — the
    // enclave has no session yet.
    let fake = engarde::crypto::channel::SealedBlock {
        sequence: 0,
        ciphertext: vec![1, 2, 3],
        tag: [0; 32],
    };
    let err = p.deliver(id, &fake).unwrap_err();
    assert!(matches!(err, EngardeError::Protocol { .. }));
}

#[test]
fn client_refuses_channel_before_attestation() {
    let p = provider(2);
    let mut c = Client::new(
        binary(),
        &spec(),
        DEFAULT_ENCLAVE_BASE,
        p.device_public_key(),
        22,
    );
    // No challenge/verify yet.
    let some_key = p.device_public_key();
    let err = c.establish_channel(&some_key).unwrap_err();
    assert!(matches!(err, EngardeError::Protocol { .. }));
    let err = c.content_blocks().unwrap_err();
    assert!(matches!(err, EngardeError::Protocol { .. }));
}

#[test]
fn inspect_before_any_content_is_refused() {
    let mut p = provider(3);
    let id = p
        .create_engarde_enclave(spec(), policies())
        .expect("create");
    let err = p.inspect_and_provision(id).unwrap_err();
    assert!(matches!(err, EngardeError::Protocol { .. }));
}

#[test]
fn unknown_enclave_ids_are_refused_everywhere() {
    let mut p = provider(4);
    assert!(p.attest(99, [0; 32]).is_err());
    assert!(p.enclave_public_key(99).is_err());
    assert!(p.open_channel(99, b"xx").is_err());
    assert!(p.inspect_and_provision(99).is_err());
    assert!(p.signed_verdict(99).is_none());
}

#[test]
fn page_index_out_of_range_is_refused() {
    let mut p = provider(5);
    let id = p
        .create_engarde_enclave(spec(), policies())
        .expect("create");
    let mut c = Client::new(
        binary(),
        &spec(),
        DEFAULT_ENCLAVE_BASE,
        p.device_public_key(),
        55,
    );
    let nonce = c.challenge();
    let quote = p.attest(id, nonce).expect("attest");
    let key = p.enclave_public_key(id).expect("key");
    c.verify_quote(&quote, &key).expect("quote");
    let wrapped = c.establish_channel(&key).expect("channel");
    p.open_channel(id, &wrapped).expect("open");

    // Hand-seal a manifest and a page with a bogus index through a
    // parallel session (same key material is inaccessible, so reuse the
    // client's legit block stream but resequence the page payload).
    let blocks = c.content_blocks().expect("blocks");
    p.deliver(id, &blocks[0]).expect("manifest");
    // blocks[1] is page 0; craft a *new* client to build a bad payload
    // is impossible without the session key — instead deliver a legit
    // block for page 0 twice is a sequence error:
    let err = p.deliver(id, &blocks[2]).unwrap_err(); // skipped seq 1
    assert!(matches!(
        err,
        EngardeError::Crypto(engarde::crypto::CryptoError::SequenceMismatch { .. })
    ));
}

#[test]
fn manifest_total_len_must_match_pages() {
    // Direct protocol-type checks (unit-level, no enclave needed).
    let m = ContentManifest {
        total_len: 4096 * 3,
        page_kinds: vec![PageKind::Data; 2],
    };
    assert!(ContentManifest::from_bytes(&m.to_bytes()).is_err());

    let p = PagePayload {
        index: 0,
        data: vec![],
    };
    assert!(PagePayload::from_bytes(&p.to_bytes()).is_err());
}

/// Opens a raw channel to `id` with a hand-rolled client session, so
/// tests can seal arbitrary (hostile) protocol messages.
fn hand_session(
    p: &mut CloudProvider,
    id: engarde::sgx::machine::EnclaveId,
    seed: u64,
) -> engarde::crypto::channel::Session {
    use engarde::crypto::channel::ChannelClient;
    use engarde::rand::{SeedableRng, StdRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let key = p.enclave_public_key(id).expect("enclave key");
    let (wrapped, session) = ChannelClient::establish(&mut rng, &key).expect("establish");
    p.open_channel(id, &wrapped).expect("open channel");
    session
}

fn two_page_manifest() -> ContentManifest {
    ContentManifest {
        total_len: 4096 * 2,
        page_kinds: vec![PageKind::Code, PageKind::Data],
    }
}

#[test]
fn duplicate_page_delivery_is_a_typed_replay_error() {
    let mut p = provider(8);
    let id = p
        .create_engarde_enclave(spec(), policies())
        .expect("create");
    let mut session = hand_session(&mut p, id, 0xD0_B0);
    p.deliver(id, &session.seal(&two_page_manifest().to_bytes()))
        .expect("manifest");
    let page = PagePayload {
        index: 0,
        data: vec![0x90; 4096],
    };
    p.deliver(id, &session.seal(&page.to_bytes()))
        .expect("first copy of page 0");
    // Replaying the same page index (fresh sequence number, so the
    // channel layer accepts it) must fail closed with the typed error —
    // a hostile provider could otherwise swap page contents mid-stream.
    let err = p.deliver(id, &session.seal(&page.to_bytes())).unwrap_err();
    assert!(
        matches!(err, EngardeError::DuplicatePage { index: 0 }),
        "got {err}"
    );
}

#[test]
fn out_of_manifest_page_index_is_a_typed_error() {
    let mut p = provider(9);
    let id = p
        .create_engarde_enclave(spec(), policies())
        .expect("create");
    let mut session = hand_session(&mut p, id, 0xBAD1);
    p.deliver(id, &session.seal(&two_page_manifest().to_bytes()))
        .expect("manifest");
    // The manifest declared 2 pages; index 5 is outside it and must be
    // refused before any buffer is touched.
    let payload = PagePayload {
        index: 5,
        data: vec![0xCC; 4096],
    };
    let err = p
        .deliver(id, &session.seal(&payload.to_bytes()))
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngardeError::PageIndexOutOfRange { index: 5, pages: 2 }
        ),
        "got {err}"
    );
}

#[test]
fn double_provisioning_the_same_enclave_is_refused() {
    let mut p = provider(6);
    let id = p
        .create_engarde_enclave(spec(), policies())
        .expect("create");
    let mut c = Client::new(
        binary(),
        &spec(),
        DEFAULT_ENCLAVE_BASE,
        p.device_public_key(),
        66,
    );
    let nonce = c.challenge();
    let quote = p.attest(id, nonce).expect("attest");
    let key = p.enclave_public_key(id).expect("key");
    c.verify_quote(&quote, &key).expect("quote");
    let wrapped = c.establish_channel(&key).expect("channel");
    p.open_channel(id, &wrapped).expect("open");
    for b in c.content_blocks().expect("blocks") {
        p.deliver(id, &b).expect("deliver");
    }
    let view = p.inspect_and_provision(id).expect("first inspection");
    assert!(view.compliant);
    // Second inspection attempt: the enclave is locked; mapping into it
    // again must fail (pages are sealed RX/RW now).
    let err = p.inspect_and_provision(id).unwrap_err();
    assert!(
        matches!(err, EngardeError::Sgx(_) | EngardeError::Protocol { .. }),
        "got {err}"
    );
}

#[test]
fn verdict_for_different_content_is_detected() {
    let mut p = provider(7);
    let id = p
        .create_engarde_enclave(spec(), policies())
        .expect("create");
    let mut c = Client::new(
        binary(),
        &spec(),
        DEFAULT_ENCLAVE_BASE,
        p.device_public_key(),
        77,
    );
    let nonce = c.challenge();
    let quote = p.attest(id, nonce).expect("attest");
    let key = p.enclave_public_key(id).expect("key");
    c.verify_quote(&quote, &key).expect("quote");
    let wrapped = c.establish_channel(&key).expect("channel");
    p.open_channel(id, &wrapped).expect("open");
    for b in c.content_blocks().expect("blocks") {
        p.deliver(id, &b).expect("deliver");
    }
    p.inspect_and_provision(id).expect("inspect");
    let verdict = p.signed_verdict(id).expect("verdict").clone();

    // A different client (different binary) is shown the same verdict:
    // content digest mismatch.
    let mut spec2 = WorkloadSpec {
        target_instructions: 6_000,
        ..WorkloadSpec::default()
    };
    spec2.seed ^= 1;
    let other = Client::new(
        generate(&spec2).image,
        &spec(),
        DEFAULT_ENCLAVE_BASE,
        p.device_public_key(),
        78,
    );
    let err = other.verify_verdict(&verdict, &key).unwrap_err();
    assert!(matches!(err, EngardeError::Protocol { .. }));
}
