//! Cross-crate determinism: with every seed fixed, the entire
//! provisioning handshake — workload bytes, challenge nonce, quote,
//! wrapped channel key, sealed content blocks, verdict — must be
//! bit-reproducible. This is the hermetic-build guarantee made
//! testable: all randomness flows through `engarde-rand`, which is
//! deterministic per seed, so two runs of the same protocol from the
//! same seeds are byte-identical end to end.

use engarde::client::Client;
use engarde::loader::LoaderConfig;
use engarde::policy::{LibraryLinkingPolicy, PolicyModule};
use engarde::provider::CloudProvider;
use engarde::provision::{BootstrapSpec, DEFAULT_ENCLAVE_BASE};
use engarde::rand::{Rng, SeedableRng, StdRng};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::generator::{generate, WorkloadSpec};
use engarde::workloads::libc::{Instrumentation, LibcLibrary};

/// Every externally-visible byte the protocol produces, in order.
#[derive(PartialEq, Debug)]
struct Transcript {
    image: Vec<u8>,
    nonce: [u8; 32],
    quote: String,
    enclave_key: String,
    wrapped_key: Vec<u8>,
    content_blocks: Vec<String>,
    view: String,
    verdict: String,
    agreed: bool,
}

fn policies() -> Vec<Box<dyn PolicyModule>> {
    let lib = LibcLibrary::build(Instrumentation::None);
    vec![Box::new(LibraryLinkingPolicy::new(
        "musl-libc",
        lib.function_hashes(),
    ))]
}

/// Runs the full provision flow from one root seed; every stream the
/// protocol consumes (machine device key, client nonce/channel key,
/// workload content) derives from it through `engarde-rand`.
fn run_protocol(root_seed: u64) -> Transcript {
    let mut seeder = StdRng::seed_from_u64(root_seed);
    let machine_seed: u64 = seeder.gen();
    let client_seed: u64 = seeder.gen();
    let workload_seed: u64 = seeder.gen();

    let workload = generate(&WorkloadSpec {
        target_instructions: 8_000,
        seed: workload_seed,
        ..WorkloadSpec::default()
    });

    let spec = BootstrapSpec::new(
        "EnGarde-1.0",
        LoaderConfig::default(),
        &policies(),
        256,
        512,
    );
    let mut provider = CloudProvider::new(MachineConfig {
        epc_pages: 2_048,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed: machine_seed,
    });
    let enclave = provider
        .create_engarde_enclave(spec.clone(), policies())
        .expect("enclave boots");
    let mut client = Client::new(
        workload.image.clone(),
        &spec,
        DEFAULT_ENCLAVE_BASE,
        provider.device_public_key(),
        client_seed,
    );
    let nonce = client.challenge();
    let quote = provider.attest(enclave, nonce).expect("attests");
    let key = provider.enclave_public_key(enclave).expect("key");
    client.verify_quote(&quote, &key).expect("quote verifies");
    let wrapped = client.establish_channel(&key).expect("channel");
    provider.open_channel(enclave, &wrapped).expect("opens");
    let blocks = client.content_blocks().expect("seals");
    for block in &blocks {
        provider.deliver(enclave, block).expect("delivers");
    }
    let view = provider.inspect_and_provision(enclave).expect("inspects");
    let verdict = provider.signed_verdict(enclave).expect("verdict").clone();
    let agreed = client.verify_verdict(&verdict, &key).expect("verifies");

    Transcript {
        image: workload.image,
        nonce,
        quote: format!("{quote:?}"),
        enclave_key: format!("{key:?}"),
        wrapped_key: wrapped,
        content_blocks: blocks.iter().map(|b| format!("{b:?}")).collect(),
        view: format!("{view:?}"),
        verdict: format!("{verdict:?}"),
        agreed,
    }
}

#[test]
fn provisioning_handshake_is_bit_reproducible() {
    let a = run_protocol(0x0E06_A2DE);
    let b = run_protocol(0x0E06_A2DE);
    assert!(a.agreed, "compliant run ends in an agreed verdict");
    assert_eq!(a, b, "same seeds must reproduce the identical handshake");
}

#[test]
fn distinct_seeds_change_every_secret_artifact() {
    // Sanity check on the other direction: randomness genuinely enters
    // the protocol, so a different root seed changes the nonce, the
    // wrapped channel key, and the sealed payload bytes.
    let a = run_protocol(1);
    let b = run_protocol(2);
    assert_ne!(a.nonce, b.nonce);
    assert_ne!(a.wrapped_key, b.wrapped_key);
    assert_ne!(a.content_blocks, b.content_blocks);
    assert_ne!(a.image, b.image, "workload content is seed-dependent");
}

#[test]
fn workload_generation_is_bit_reproducible() {
    let spec = WorkloadSpec {
        target_instructions: 12_000,
        instrumentation: Instrumentation::Ifcc,
        seed: 0xD5EED,
        ..WorkloadSpec::default()
    };
    let a = generate(&spec);
    let b = generate(&spec);
    assert_eq!(a.image, b.image);
    assert_eq!(a.stats, b.stats);
}
