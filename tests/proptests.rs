//! Property-based tests on the stack's core data structures and
//! invariants.

use engarde::crypto::aes::{ctr_xor, AesKey};
use engarde::crypto::bignum::BigUint;
use engarde::crypto::channel::{ChannelClient, ChannelServer};
use engarde::crypto::hmac::hmac_sha256;
use engarde::crypto::rsa::RsaKeyPair;
use engarde::crypto::sha256::Sha256;
use engarde::elf::build::ElfBuilder;
use engarde::elf::parse::ElfFile;
use engarde::x86::decode::{decode_all, decode_one};
use engarde::x86::encode::Assembler;
use engarde::x86::reg::Reg;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // ---- bignum ------------------------------------------------------

    #[test]
    fn bignum_add_sub_round_trip(a in proptest::collection::vec(any::<u8>(), 0..40),
                                 b in proptest::collection::vec(any::<u8>(), 0..40)) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        let sum = x.add(&y);
        prop_assert_eq!(sum.sub(&y), x.clone());
        prop_assert_eq!(sum.sub(&x), y);
    }

    #[test]
    fn bignum_divrem_reconstructs(a in proptest::collection::vec(any::<u8>(), 0..48),
                                  b in proptest::collection::vec(any::<u8>(), 1..32)) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        prop_assume!(!y.is_zero());
        let (q, r) = x.divrem(&y);
        prop_assert!(r < y);
        prop_assert_eq!(q.mul(&y).add(&r), x);
    }

    #[test]
    fn bignum_mul_commutative_and_distributive(
        a in proptest::collection::vec(any::<u8>(), 0..24),
        b in proptest::collection::vec(any::<u8>(), 0..24),
        c in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        let z = BigUint::from_bytes_be(&c);
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        prop_assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }

    #[test]
    fn bignum_byte_round_trip(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        let x = BigUint::from_bytes_be(&a);
        let bytes = x.to_bytes_be();
        prop_assert_eq!(BigUint::from_bytes_be(&bytes), x);
        // Canonical form: no leading zero.
        if let Some(&first) = bytes.first() {
            prop_assert_ne!(first, 0);
        }
    }

    #[test]
    fn bignum_shifts_are_mul_div_by_powers(a in proptest::collection::vec(any::<u8>(), 0..32),
                                           s in 0usize..100) {
        let x = BigUint::from_bytes_be(&a);
        let two_s = BigUint::one().shl(s);
        prop_assert_eq!(x.shl(s), x.mul(&two_s));
        prop_assert_eq!(x.shl(s).shr(s), x);
    }

    // ---- symmetric crypto -------------------------------------------------

    #[test]
    fn aes_ctr_is_involutive(key in proptest::array::uniform32(any::<u8>()),
                             nonce in proptest::array::uniform16(any::<u8>()),
                             counter in any::<u64>(),
                             mut data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let original = data.clone();
        let key = AesKey::new_256(&key);
        ctr_xor(&key, &nonce, counter, &mut data);
        ctr_xor(&key, &nonce, counter, &mut data);
        prop_assert_eq!(data, original);
    }

    #[test]
    fn aes_block_decrypt_inverts_encrypt(key in proptest::array::uniform32(any::<u8>()),
                                         block in proptest::array::uniform16(any::<u8>())) {
        let key = AesKey::new_256(&key);
        let mut b = block;
        key.encrypt_block(&mut b);
        key.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                         split in 0usize..1024) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_is_key_and_message_sensitive(key in proptest::collection::vec(any::<u8>(), 1..64),
                                         msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let tag = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert_ne!(hmac_sha256(&key2, &msg), tag);
        let mut msg2 = msg.clone();
        msg2.push(0);
        prop_assert_ne!(hmac_sha256(&key, &msg2), tag);
    }

    // ---- channel -------------------------------------------------------------

    #[test]
    fn channel_round_trips_arbitrary_payload_sequences(
        seed in any::<u64>(),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = RsaKeyPair::generate(&mut rng, 512);
        let server = ChannelServer::new(kp);
        let (wrapped, mut client) =
            ChannelClient::establish(&mut rng, server.public_key()).expect("establish");
        let mut session = server.accept(&wrapped).expect("accept");
        for p in &payloads {
            let block = client.seal(p);
            prop_assert_eq!(&session.open(&block).expect("opens"), p);
        }
    }

    // ---- ELF ------------------------------------------------------------------

    #[test]
    fn elf_round_trips_arbitrary_sections(text in proptest::collection::vec(any::<u8>(), 0..4096),
                                          data in proptest::collection::vec(any::<u8>(), 0..2048),
                                          bss in 0u64..10_000) {
        let image = ElfBuilder::new()
            .text(text.clone())
            .data(data.clone())
            .bss_size(bss)
            .build();
        let elf = ElfFile::parse(&image).expect("generated ELF parses");
        prop_assert_eq!(&elf.section(".text").expect(".text").data, &text);
        prop_assert_eq!(&elf.section(".data").expect(".data").data, &data);
        prop_assert_eq!(elf.section(".bss").expect(".bss").header.sh_size, bss);
        prop_assert!(elf.require_pie().is_ok());
        prop_assert!(elf.require_static().is_ok());
    }

    #[test]
    fn elf_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ElfFile::parse(&bytes); // must never panic
    }

    #[test]
    fn elf_parser_never_panics_on_corrupted_valid_images(
        flip_at in 0usize..2048,
        flip_with in any::<u8>(),
    ) {
        let mut image = ElfBuilder::new()
            .text(vec![0x90; 64])
            .data(vec![1, 2, 3])
            .function("f", 0, 64)
            .relative_relocation(0, 8)
            .build();
        let at = flip_at % image.len();
        image[at] ^= flip_with | 1;
        if let Ok(elf) = ElfFile::parse(&image) {
            let _ = elf.rela_entries(); // must never panic either
        }
    }

    // ---- x86 -------------------------------------------------------------------

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = decode_one(&bytes, 0x1000); // must never panic
    }

    #[test]
    fn decoder_length_accounting_is_exact(bytes in proptest::collection::vec(any::<u8>(), 1..20)) {
        if let Ok(insn) = decode_one(&bytes, 0) {
            prop_assert!(insn.len as usize <= bytes.len());
            prop_assert_eq!(
                insn.prefix_len + insn.opcode_len + insn.modrm_len + insn.disp_len + insn.imm_len,
                insn.len
            );
            prop_assert!(insn.len >= 1);
        }
    }

    #[test]
    fn assembler_output_always_decodes(ops in proptest::collection::vec(0u8..12, 1..64),
                                       regs in proptest::collection::vec(0usize..8, 64)) {
        let scratch = [Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::Rbx,
                       Reg::Rsi, Reg::Rdi, Reg::R8, Reg::R9];
        let mut asm = Assembler::new();
        for (i, &op) in ops.iter().enumerate() {
            let a = scratch[regs[i % regs.len()]];
            let b = scratch[regs[(i + 1) % regs.len()]];
            match op {
                0 => asm.mov_rr64(a, b),
                1 => asm.add_rr64(a, b),
                2 => asm.sub_rr64(a, b),
                3 => asm.xor_rr32(a, b),
                4 => asm.cmp_rr64(a, b),
                5 => asm.mov_ri32(a, 0xdead),
                6 => asm.movabs(a, 0x1122334455667788),
                7 => asm.push_reg(a),
                8 => asm.pop_reg(a),
                9 => asm.nop(),
                10 => asm.mov_fs_to_reg(a, 0x28),
                _ => asm.add_ri8(a, 5),
            }
        }
        asm.ret();
        let expected = asm.insn_count();
        let code = asm.finish();
        let insns = decode_all(&code, 0).expect("assembled code decodes");
        prop_assert_eq!(insns.len() as u64, expected);
    }
}

#[test]
fn rsa_round_trip_nonproptest() {
    // RSA keygen is too slow to run under proptest's many cases; one
    // deterministic round here.
    let mut rng = StdRng::seed_from_u64(0xAAA);
    let kp = RsaKeyPair::generate(&mut rng, 512);
    for msg in [&b""[..], b"x", &[0u8; 53]] {
        let ct = kp.public().encrypt(&mut rng, msg).expect("encrypt");
        assert_eq!(kp.decrypt(&ct).expect("decrypt"), msg);
    }
}
