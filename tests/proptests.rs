//! Property-based tests on the stack's core data structures and
//! invariants, running on the in-tree harness
//! (`engarde::rand::harness`) — seeded case generation with
//! regression-seed replay, no external dependencies.
//!
//! When a property fails, the harness prints the failing case seed;
//! pin it by appending to that property's `.regressions(&[…])` list.

use engarde::crypto::aes::{ctr_xor, AesKey};
use engarde::crypto::bignum::BigUint;
use engarde::crypto::channel::{ChannelClient, ChannelServer};
use engarde::crypto::hmac::hmac_sha256;
use engarde::crypto::rsa::RsaKeyPair;
use engarde::crypto::sha256::Sha256;
use engarde::elf::build::ElfBuilder;
use engarde::elf::parse::ElfFile;
use engarde::rand::harness::{vec_u8, Property};
use engarde::rand::{Rng, SeedableRng, StdRng};
use engarde::x86::decode::{decode_all, decode_one};
use engarde::x86::encode::Assembler;
use engarde::x86::reg::Reg;

// ---- bignum ------------------------------------------------------

#[test]
fn bignum_add_sub_round_trip() {
    Property::new("bignum_add_sub_round_trip").run(|rng| {
        let a = vec_u8(rng, 0..40);
        let b = vec_u8(rng, 0..40);
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        let sum = x.add(&y);
        assert_eq!(sum.sub(&y), x.clone());
        assert_eq!(sum.sub(&x), y);
    });
}

#[test]
fn bignum_divrem_reconstructs() {
    Property::new("bignum_divrem_reconstructs").run(|rng| {
        let a = vec_u8(rng, 0..48);
        let b = vec_u8(rng, 1..32);
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        if y.is_zero() {
            return; // divisor bytes were all zero: skip, like prop_assume!
        }
        let (q, r) = x.divrem(&y);
        assert!(r < y);
        assert_eq!(q.mul(&y).add(&r), x);
    });
}

#[test]
fn bignum_mul_commutative_and_distributive() {
    Property::new("bignum_mul_commutative_and_distributive").run(|rng| {
        let x = BigUint::from_bytes_be(&vec_u8(rng, 0..24));
        let y = BigUint::from_bytes_be(&vec_u8(rng, 0..24));
        let z = BigUint::from_bytes_be(&vec_u8(rng, 0..24));
        assert_eq!(x.mul(&y), y.mul(&x));
        assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    });
}

#[test]
fn bignum_byte_round_trip() {
    Property::new("bignum_byte_round_trip").run(|rng| {
        let a = vec_u8(rng, 0..64);
        let x = BigUint::from_bytes_be(&a);
        let bytes = x.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), x);
        // Canonical form: no leading zero.
        if let Some(&first) = bytes.first() {
            assert_ne!(first, 0);
        }
    });
}

#[test]
fn bignum_shifts_are_mul_div_by_powers() {
    Property::new("bignum_shifts_are_mul_div_by_powers").run(|rng| {
        let a = vec_u8(rng, 0..32);
        let s = rng.gen_range(0usize..100);
        let x = BigUint::from_bytes_be(&a);
        let two_s = BigUint::one().shl(s);
        assert_eq!(x.shl(s), x.mul(&two_s));
        assert_eq!(x.shl(s).shr(s), x);
    });
}

// ---- symmetric crypto -------------------------------------------------

#[test]
fn aes_ctr_is_involutive() {
    Property::new("aes_ctr_is_involutive").run(|rng| {
        let key_bytes: [u8; 32] = rng.gen();
        let nonce: [u8; 16] = rng.gen();
        let counter: u64 = rng.gen();
        let mut data = vec_u8(rng, 0..512);
        let original = data.clone();
        let key = AesKey::new_256(&key_bytes);
        ctr_xor(&key, &nonce, counter, &mut data);
        ctr_xor(&key, &nonce, counter, &mut data);
        assert_eq!(data, original);
    });
}

#[test]
fn aes_block_decrypt_inverts_encrypt() {
    Property::new("aes_block_decrypt_inverts_encrypt").run(|rng| {
        let key_bytes: [u8; 32] = rng.gen();
        let block: [u8; 16] = rng.gen();
        let key = AesKey::new_256(&key_bytes);
        let mut b = block;
        key.encrypt_block(&mut b);
        key.decrypt_block(&mut b);
        assert_eq!(b, block);
    });
}

#[test]
fn sha256_incremental_equals_oneshot() {
    Property::new("sha256_incremental_equals_oneshot").run(|rng| {
        let data = vec_u8(rng, 0..1024);
        let split = rng.gen_range(0usize..1024).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    });
}

#[test]
fn hmac_is_key_and_message_sensitive() {
    Property::new("hmac_is_key_and_message_sensitive").run(|rng| {
        let key = vec_u8(rng, 1..64);
        let msg = vec_u8(rng, 0..256);
        let tag = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        assert_ne!(hmac_sha256(&key2, &msg), tag);
        let mut msg2 = msg.clone();
        msg2.push(0);
        assert_ne!(hmac_sha256(&key, &msg2), tag);
    });
}

// ---- channel -------------------------------------------------------------

#[test]
fn channel_round_trips_arbitrary_payload_sequences() {
    // RSA keygen dominates each case; keep the batch small.
    Property::new("channel_round_trips_arbitrary_payload_sequences")
        .cases(8)
        .run(|rng| {
            let kp = RsaKeyPair::generate(rng, 512);
            let server = ChannelServer::new(kp);
            let (wrapped, mut client) =
                ChannelClient::establish(rng, server.public_key()).expect("establish");
            let mut session = server.accept(&wrapped).expect("accept");
            let payload_count = rng.gen_range(1usize..8);
            for _ in 0..payload_count {
                let p = vec_u8(rng, 0..200);
                let block = client.seal(&p);
                assert_eq!(session.open(&block).expect("opens"), p);
            }
        });
}

// ---- provisioning protocol frames ----------------------------------------

#[test]
fn manifest_parser_never_panics_on_arbitrary_bytes() {
    use engarde::protocol::ContentManifest;
    Property::new("manifest_parser_never_panics_on_arbitrary_bytes")
        .cases(512)
        .run(|rng| {
            let bytes = vec_u8(rng, 0..256);
            let _ = ContentManifest::from_bytes(&bytes); // must never panic
        });
}

#[test]
fn manifest_round_trips_and_corruption_fails_closed() {
    use engarde::protocol::{ContentManifest, PageKind};
    Property::new("manifest_round_trips_and_corruption_fails_closed").run(|rng| {
        // A consistent manifest: page count matching total_len.
        let pages = rng.gen_range(1usize..64);
        let last_page_bytes = rng.gen_range(1usize..=4096);
        let total_len = (pages - 1) * 4096 + last_page_bytes;
        let page_kinds: Vec<PageKind> = (0..pages)
            .map(|_| {
                if rng.gen_range(0u8..2) == 1 {
                    PageKind::Code
                } else {
                    PageKind::Data
                }
            })
            .collect();
        let m = ContentManifest {
            total_len,
            page_kinds,
        };
        let bytes = m.to_bytes();
        assert_eq!(ContentManifest::from_bytes(&bytes).expect("round trip"), m);
        // Any single-byte corruption must parse to a *different but
        // consistent* manifest or fail — never panic, never alias the
        // original.
        let mut corrupted = bytes.clone();
        let at = rng.gen_range(0usize..corrupted.len());
        let flip: u8 = rng.gen::<u8>() | 1;
        corrupted[at] ^= flip;
        if let Ok(parsed) = ContentManifest::from_bytes(&corrupted) {
            assert_ne!(parsed, m, "corruption at byte {at} went unnoticed");
            assert_eq!(parsed.page_count(), parsed.total_len.div_ceil(4096));
        }
    });
}

#[test]
fn page_payload_parser_never_panics_on_arbitrary_bytes() {
    use engarde::protocol::PagePayload;
    Property::new("page_payload_parser_never_panics_on_arbitrary_bytes")
        .cases(512)
        .run(|rng| {
            let bytes = vec_u8(rng, 0..5000);
            if let Ok(p) = PagePayload::from_bytes(&bytes) {
                // Accepted payloads always satisfy the size invariant.
                assert!(!p.data.is_empty() && p.data.len() <= 4096);
            }
        });
}

#[test]
fn page_payload_round_trips() {
    use engarde::protocol::PagePayload;
    Property::new("page_payload_round_trips").run(|rng| {
        let p = PagePayload {
            index: rng.gen_range(0usize..100_000),
            data: vec_u8(rng, 1..4097),
        };
        assert_eq!(
            PagePayload::from_bytes(&p.to_bytes()).expect("round trip"),
            p
        );
        // Oversized and empty payloads are refused symmetrically.
        let oversized = PagePayload {
            index: 0,
            data: vec![0xAB; 4097],
        };
        assert!(PagePayload::from_bytes(&oversized.to_bytes()).is_err());
    });
}

// ---- ELF ------------------------------------------------------------------

#[test]
fn elf_round_trips_arbitrary_sections() {
    Property::new("elf_round_trips_arbitrary_sections").run(|rng| {
        let text = vec_u8(rng, 0..4096);
        let data = vec_u8(rng, 0..2048);
        let bss = rng.gen_range(0u64..10_000);
        let image = ElfBuilder::new()
            .text(text.clone())
            .data(data.clone())
            .bss_size(bss)
            .build();
        let elf = ElfFile::parse(&image).expect("generated ELF parses");
        assert_eq!(&elf.section(".text").expect(".text").data, &text);
        assert_eq!(&elf.section(".data").expect(".data").data, &data);
        assert_eq!(elf.section(".bss").expect(".bss").header.sh_size, bss);
        assert!(elf.require_pie().is_ok());
        assert!(elf.require_static().is_ok());
    });
}

#[test]
fn elf_parser_never_panics_on_garbage() {
    Property::new("elf_parser_never_panics_on_garbage")
        .cases(256)
        .run(|rng| {
            let bytes = vec_u8(rng, 0..512);
            let _ = ElfFile::parse(&bytes); // must never panic
        });
}

#[test]
fn elf_parser_never_panics_on_corrupted_valid_images() {
    Property::new("elf_parser_never_panics_on_corrupted_valid_images")
        .cases(256)
        .run(|rng| {
            let mut image = ElfBuilder::new()
                .text(vec![0x90; 64])
                .data(vec![1, 2, 3])
                .function("f", 0, 64)
                .relative_relocation(0, 8)
                .build();
            let at = rng.gen_range(0usize..2048) % image.len();
            let flip_with: u8 = rng.gen();
            image[at] ^= flip_with | 1;
            if let Ok(elf) = ElfFile::parse(&image) {
                let _ = elf.rela_entries(); // must never panic either
            }
        });
}

// ---- x86 -------------------------------------------------------------------

#[test]
fn decoder_never_panics() {
    Property::new("decoder_never_panics").cases(512).run(|rng| {
        let bytes = vec_u8(rng, 0..32);
        let _ = decode_one(&bytes, 0x1000); // must never panic
    });
}

#[test]
fn decoder_length_accounting_is_exact() {
    Property::new("decoder_length_accounting_is_exact")
        .cases(512)
        .run(|rng| {
            let bytes = vec_u8(rng, 1..20);
            if let Ok(insn) = decode_one(&bytes, 0) {
                assert!(insn.len as usize <= bytes.len());
                assert_eq!(
                    insn.prefix_len
                        + insn.opcode_len
                        + insn.modrm_len
                        + insn.disp_len
                        + insn.imm_len,
                    insn.len
                );
                assert!(insn.len >= 1);
            }
        });
}

#[test]
fn assembler_output_always_decodes() {
    Property::new("assembler_output_always_decodes").run(|rng| {
        let scratch = [
            Reg::Rax,
            Reg::Rcx,
            Reg::Rdx,
            Reg::Rbx,
            Reg::Rsi,
            Reg::Rdi,
            Reg::R8,
            Reg::R9,
        ];
        let op_count = rng.gen_range(1usize..64);
        let regs: Vec<usize> = (0..64).map(|_| rng.gen_range(0usize..8)).collect();
        let mut asm = Assembler::new();
        for i in 0..op_count {
            let a = scratch[regs[i % regs.len()]];
            let b = scratch[regs[(i + 1) % regs.len()]];
            match rng.gen_range(0u8..12) {
                0 => asm.mov_rr64(a, b),
                1 => asm.add_rr64(a, b),
                2 => asm.sub_rr64(a, b),
                3 => asm.xor_rr32(a, b),
                4 => asm.cmp_rr64(a, b),
                5 => asm.mov_ri32(a, 0xdead),
                6 => asm.movabs(a, 0x1122334455667788),
                7 => asm.push_reg(a),
                8 => asm.pop_reg(a),
                9 => asm.nop(),
                10 => asm.mov_fs_to_reg(a, 0x28),
                _ => asm.add_ri8(a, 5),
            }
        }
        asm.ret();
        let expected = asm.insn_count();
        let code = asm.finish();
        let insns = decode_all(&code, 0).expect("assembled code decodes");
        assert_eq!(insns.len() as u64, expected);
    });
}

#[test]
fn rsa_round_trip_nonproptest() {
    // RSA keygen is too slow to run under many property cases; one
    // deterministic round here.
    let mut rng = StdRng::seed_from_u64(0xAAA);
    let kp = RsaKeyPair::generate(&mut rng, 512);
    for msg in [&b""[..], b"x", &[0u8; 53]] {
        let ct = kp.public().encrypt(&mut rng, msg).expect("encrypt");
        assert_eq!(kp.decrypt(&ct).expect("decrypt"), msg);
    }
}
