//! The SGX1-vs-SGX2 distinction the paper hinges on (§3–4).
//!
//! "While the current version of SGX hardware allows for page
//! permissions to be set/cleared by the host OS, it does not yet offer
//! support for page permissions at the hardware level … Although EnGarde
//! can be implemented readily even on SGX version 1 processors, the
//! permission check can only be enforced in software within the host OS,
//! and this has been shown to be open to attack. Thus, EnGarde requires
//! the features of SGX version 2 for security."

use engarde::sgx::epc::{PagePerms, PAGE_SIZE};
use engarde::sgx::host::HostOs;
use engarde::sgx::instr::{SgxInstr, SgxVersion};
use engarde::sgx::machine::{EnclaveId, MachineConfig, SgxMachine};
use engarde::sgx::SgxError;

fn host(version: SgxVersion) -> HostOs {
    HostOs::new(SgxMachine::new(MachineConfig {
        epc_pages: 128,
        version,
        device_key_bits: 512,
        seed: 0x51,
    }))
}

fn provisioned_enclave(h: &mut HostOs) -> (EnclaveId, u64, u64) {
    let base = 0x200000;
    let id = h
        .create_enclave(base, 8 * PAGE_SIZE as u64)
        .expect("create");
    let code = base;
    let data = base + PAGE_SIZE as u64;
    h.add_page(id, code, &[0x90, 0xc3], PagePerms::RWX)
        .expect("code");
    h.add_page(id, data, &[0u8; 16], PagePerms::RWX)
        .expect("data");
    h.machine_mut().einit(id).expect("einit");
    h.finalize_provisioned_enclave(id, &[code])
        .expect("finalize");
    (id, code, data)
}

#[test]
fn v1_software_only_enforcement_is_bypassable() {
    let mut h = host(SgxVersion::V1);
    let (id, code, _) = provisioned_enclave(&mut h);
    // Honest state: W^X holds at the page-table level.
    assert_eq!(h.effective_perms(id, code), Some(PagePerms::RX));
    // Malicious host flips the PTE: nothing stops it on V1.
    let after = h.attack_flip_pte(id, code, PagePerms::RWX).expect("attack");
    assert_eq!(after, PagePerms::RWX);
    assert!(!after.is_wx_exclusive(), "code page writable again on SGX1");
}

#[test]
fn v2_epcm_enforcement_survives_pte_attack() {
    let mut h = host(SgxVersion::V2);
    let (id, code, data) = provisioned_enclave(&mut h);
    let after = h.attack_flip_pte(id, code, PagePerms::RWX).expect("attack");
    assert_eq!(after, PagePerms::RX, "EPCM caps the attack on SGX2");
    // Data pages equally cannot become executable.
    let after = h.attack_flip_pte(id, data, PagePerms::RWX).expect("attack");
    assert_eq!(after, PagePerms::RW);
}

#[test]
fn v2_blocks_writes_at_the_machine_level() {
    let mut h = host(SgxVersion::V2);
    let (id, code, _) = provisioned_enclave(&mut h);
    h.attack_flip_pte(id, code, PagePerms::RWX).expect("attack");
    // Even with the PTE flipped, the machine refuses the write because
    // the EPCM says the page is not writable.
    let err = h
        .machine_mut()
        .enclave_write(id, code, &[0xcc])
        .unwrap_err();
    assert!(matches!(err, SgxError::PermissionDenied { .. }));
}

#[test]
fn v1_machine_rejects_sgx2_leaves() {
    let mut h = host(SgxVersion::V1);
    let (id, code, _) = provisioned_enclave(&mut h);
    for result in [
        h.machine_mut().emodpr(id, code, PagePerms::RX),
        h.machine_mut().emodpe(id, code, PagePerms::RWX),
        h.machine_mut().eaccept(id, code),
    ] {
        assert!(matches!(result, Err(SgxError::NotSupported { .. })));
    }
}

#[test]
fn sgx2_leaves_appear_in_the_instruction_log_only_on_v2() {
    let mut h2 = host(SgxVersion::V2);
    provisioned_enclave(&mut h2);
    let log2 = h2.machine().instr_log();
    assert!(log2.contains(&SgxInstr::Emodpr));
    assert!(log2.contains(&SgxInstr::Eaccept));

    let mut h1 = host(SgxVersion::V1);
    provisioned_enclave(&mut h1);
    let log1 = h1.machine().instr_log();
    assert!(!log1.contains(&SgxInstr::Emodpr));
    assert!(!log1.contains(&SgxInstr::Eaccept));
}

#[test]
fn extension_lockout_holds_on_both_versions() {
    for version in [SgxVersion::V1, SgxVersion::V2] {
        let mut h = host(version);
        let (id, _, _) = provisioned_enclave(&mut h);
        let vaddr = 0x200000 + 4 * PAGE_SIZE as u64;
        let err = h.add_page(id, vaddr, &[0x90], PagePerms::RWX).unwrap_err();
        assert!(
            matches!(err, SgxError::ExtensionLocked { .. }),
            "{version:?}: post-provisioning EADD must be refused"
        );
    }
}

#[test]
fn asyncshock_style_exec_revocation_is_host_power_on_both() {
    // AsyncShock removes read/execute permissions to interrupt threads.
    // That direction (restricting) is always within the host's power —
    // the EPCM only prevents *escalation*. The enclave's defence is that
    // its code cannot be modified, not that it cannot be paused.
    for version in [SgxVersion::V1, SgxVersion::V2] {
        let mut h = host(version);
        let (id, code, _) = provisioned_enclave(&mut h);
        let after = h.attack_flip_pte(id, code, PagePerms::R).expect("restrict");
        assert_eq!(after, PagePerms::R, "{version:?}");
    }
}
