//! Warm-start integration: a fleet with a persistent verdict store,
//! restarted over the same directory, hydrates its cache from sealed
//! records and reproduces the cold run's signed verdicts bit-for-bit —
//! while re-admitting every known binary for cache-probe cost only
//! (disassembly and policy checking are skipped). A foreign inspector
//! identity hydrates nothing and silently falls back to cold-path
//! inspection.

use engarde::loader::LoaderConfig;
use engarde::provision::BootstrapSpec;
use engarde::serve::persist::StoreConfig;
use engarde::serve::service::{ProvisioningService, SchedMode, ServiceConfig, ServiceResult};
use engarde::serve::{regimes, SessionRunConfig};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::sgx::perf::costs;
use engarde::workloads::traffic::{distinct_binary_traffic, TrafficItem};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn machine(seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 4_096,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    }
}

/// A unique, self-cleaning scratch directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "engarde-warm-start-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn store_cfg(dir: &Path, machine_seed: u64) -> StoreConfig {
    let spec = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &[], 64, 512);
    StoreConfig::sealed_at(dir, &machine(machine_seed), &spec)
}

/// One fleet generation: submit `traffic`, drain, return the result.
fn run_fleet(traffic: &[TrafficItem], seed: u64, store: StoreConfig) -> ServiceResult {
    let musl = Arc::new(regimes::musl_hashes());
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_500_000,
        },
        machine: machine(seed),
        queue_capacity: 64,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: None,
        store: Some(store),
        batch: None,
        steal: true,
    });
    for item in traffic {
        svc.submit(regimes::request_for(item, &musl))
            .expect("admit");
    }
    svc.drain()
}

#[test]
fn warm_restart_reproduces_verdicts_for_probe_cost_only() {
    let traffic = distinct_binary_traffic(6, 3, 0x3A21);
    let tmp = TempDir::new("probe");
    let cfg = store_cfg(tmp.path(), 0x3A22);

    // Generation 1: cold. Every binary is novel, so every session pays
    // the full disassembly + policy pipeline, and every verdict is
    // flushed to the sealed store during drain.
    let cold = run_fleet(&traffic, 0x3A22, cfg.clone());
    assert!(cold.reports.iter().all(|r| r.reached_verdict()));
    assert!(cold.reports.iter().all(|r| !r.cache_hit));
    let cold_counters = cold.metrics.counters();
    assert_eq!(cold_counters.cache_warm_hits, 0);
    let cold_store = cold.metrics.store_stats();
    assert!(cold_store.enabled);
    assert_eq!(cold_store.hydrated, 0, "an empty store hydrates nothing");
    assert_eq!(
        cold_store.flushed,
        traffic.len() as u64,
        "every distinct verdict must be flushed"
    );

    // Generation 2: warm restart over the same directory and identity.
    let warm = run_fleet(&traffic, 0x3A22, cfg);
    assert_eq!(
        warm.verdict_fingerprint(),
        cold.verdict_fingerprint(),
        "a warm restart must reproduce the cold run's verdicts bit-for-bit"
    );
    let warm_store = warm.metrics.store_stats();
    assert_eq!(
        warm_store.hydrated,
        traffic.len() as u64,
        "every sealed verdict must hydrate"
    );
    assert_eq!(
        warm.metrics.counters().cache_warm_hits,
        traffic.len() as u64,
        "every session must hit a hydrated entry"
    );
    for report in &warm.reports {
        assert!(report.cache_hit, "{}: expected a warm hit", report.name);
        assert_eq!(
            report.stages.disassembly,
            costs::CACHE_PROBE,
            "{}: a warm hit pays the probe, nothing more",
            report.name
        );
        assert_eq!(
            report.stages.policy_checking, 0,
            "{}: policy checking must be skipped on a warm hit",
            report.name
        );
    }
    // Skipped analysis is visible in aggregate: each warm session is
    // strictly cheaper than its cold twin.
    for (c, w) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(c.name, w.name);
        assert!(
            w.stages.total() < c.stages.total(),
            "{}: warm inspection must cost less than cold",
            c.name
        );
    }
}

#[test]
fn warm_restart_is_deterministic_end_to_end() {
    let traffic = distinct_binary_traffic(4, 3, 0x3A31);
    let tmp = TempDir::new("determinism");
    let cfg = store_cfg(tmp.path(), 0x3A32);

    let _seed_run = run_fleet(&traffic, 0x3A32, cfg.clone());
    let a = run_fleet(&traffic, 0x3A32, cfg.clone());

    // A second independent lineage: same traffic, fresh directory.
    let tmp2 = TempDir::new("determinism-b");
    let cfg2 = store_cfg(tmp2.path(), 0x3A32);
    let _seed_run2 = run_fleet(&traffic, 0x3A32, cfg2.clone());
    let b = run_fleet(&traffic, 0x3A32, cfg2);

    // Warm restarts are a deterministic function of (traffic, machine,
    // store lineage): two identical lineages agree on everything the
    // virtual clock can see.
    assert_eq!(a.makespan_cycles, b.makespan_cycles);
    assert_eq!(a.verdict_fingerprint(), b.verdict_fingerprint());
    assert_eq!(a.metrics.counters(), b.metrics.counters());

    // And the restart run replays strictly faster than its cold seed,
    // hydration cost included in the makespan.
    assert!(
        a.makespan_cycles < _seed_run.makespan_cycles,
        "warm makespan {} must beat cold {}",
        a.makespan_cycles,
        _seed_run.makespan_cycles
    );
}

#[test]
fn foreign_identity_hydrates_nothing_and_falls_back_cold() {
    let traffic = distinct_binary_traffic(3, 3, 0x3A41);
    let tmp = TempDir::new("foreign");
    let genuine = store_cfg(tmp.path(), 0x3A42);

    let cold = run_fleet(&traffic, 0x3A42, genuine);
    assert!(cold.metrics.store_stats().flushed > 0);

    // Same directory, but the restarted fleet derives its seal key on a
    // different machine: every segment fails authentication, the store
    // opens empty, and the fleet silently does full cold-path work.
    let foreign = store_cfg(tmp.path(), 0x3A42 ^ 0xF00D);
    let restarted = run_fleet(&traffic, 0x3A42, foreign);
    let snap = restarted.metrics.store_stats();
    assert_eq!(snap.hydrated, 0, "foreign identity must hydrate nothing");
    assert_eq!(restarted.metrics.counters().cache_warm_hits, 0);
    assert!(restarted.reports.iter().all(|r| !r.cache_hit));
    assert!(restarted.reports.iter().all(|r| r.reached_verdict()));
    assert_eq!(
        restarted.verdict_fingerprint(),
        cold.verdict_fingerprint(),
        "cold-path inspection is deterministic regardless of the store"
    );
}
