//! The fault-injection matrix: every fault kind, against compliant and
//! adversarial chaos fleets, must uphold the serve-path invariant —
//! a typed error or clean rejection, never a panic, never a hang, and
//! never a signed PASS verdict over faulted traffic. A second set of
//! tests pins the determinism contract: the fault schedule and the
//! resulting metrics are pure functions of the plan seed, and a
//! fault-free run with the layer enabled is bit-identical to a run
//! without it.

use engarde::loader::LoaderConfig;
use engarde::provision::BootstrapSpec;
use engarde::serve::faults::{FaultKind, FaultMix, FaultPlan};
use engarde::serve::persist::{store_seal_key, StoreConfig};
use engarde::serve::service::{ProvisioningService, SchedMode, ServiceConfig, ServiceResult};
use engarde::serve::{regimes, ServeError, SessionOutcome, SessionRunConfig};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::traffic::{adversarial_chaos_fleet, chaos_fleet, TrafficItem};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn machine(seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 4_096,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    }
}

/// Runs `traffic` through a two-shard virtual-time fleet under `plan`,
/// returning the result plus any typed submit rejections (a fully dead
/// fleet refuses admission with `PoolDead`; that is the invariant
/// working, not a failure of it).
fn run_with_plan(
    traffic: &[TrafficItem],
    seed: u64,
    plan: Option<FaultPlan>,
    run: SessionRunConfig,
) -> (ServiceResult, Vec<ServeError>) {
    let musl = Arc::new(regimes::musl_hashes());
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_500_000,
        },
        machine: machine(seed),
        queue_capacity: 64,
        run,
        verdict_cache: None,
        faults: plan,
        store: None,
        batch: None,
        steal: true,
    });
    let mut refused = Vec::new();
    for item in traffic {
        if let Err(e) = svc.submit(regimes::request_for(item, &musl)) {
            refused.push(e);
        }
    }
    (svc.drain(), refused)
}

/// A unique, self-cleaning scratch directory per store-fault test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "engarde-fault-store-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// [`run_with_plan`], with a persistent verdict store attached.
fn run_with_store(
    traffic: &[TrafficItem],
    seed: u64,
    plan: Option<FaultPlan>,
    run: SessionRunConfig,
    store: StoreConfig,
) -> (ServiceResult, Vec<ServeError>) {
    let musl = Arc::new(regimes::musl_hashes());
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_500_000,
        },
        machine: machine(seed),
        queue_capacity: 64,
        run,
        verdict_cache: None,
        faults: plan,
        store: Some(store),
        batch: None,
        steal: true,
    });
    let mut refused = Vec::new();
    for item in traffic {
        if let Err(e) = svc.submit(regimes::request_for(item, &musl)) {
            refused.push(e);
        }
    }
    (svc.drain(), refused)
}

#[test]
fn every_fault_kind_yields_typed_outcome_never_a_signed_pass() {
    let compliant = chaos_fleet(3, 3, 0xFA01);
    let adversarial = adversarial_chaos_fleet(3, 0xFA02);
    // No retries: the injected fault's first typed error is terminal,
    // so every kind's detection path is visible in the outcome.
    let run = SessionRunConfig {
        retry_budget: 0,
        ..SessionRunConfig::default()
    };

    for kind in FaultKind::ALL {
        if kind.is_store() {
            // Store faults damage verdicts at rest, never a session's
            // transport — a legitimately compliant session still earns
            // its signed PASS. Their invariant (typed recovery, no
            // unauthenticated verdict admitted) is pinned by the
            // dedicated store-fault tests below.
            continue;
        }
        for (fleet_name, traffic) in [("compliant", &compliant), ("adversarial", &adversarial)] {
            let plan = FaultPlan {
                seed: 0x5EED ^ kind.index() as u64,
                mix: FaultMix::only(kind, 1000),
            };
            let (result, refused) = run_with_plan(traffic, 0xFA03, Some(plan), run.clone());

            // Reaching this line at all is the no-panic / no-hang half
            // of the invariant; the outcomes are the no-signed-PASS half.
            for report in &result.reports {
                assert_ne!(
                    report.outcome,
                    SessionOutcome::Compliant,
                    "{} fault on {fleet_name} fleet signed a PASS for {}",
                    kind.name(),
                    report.name
                );
                match &report.outcome {
                    SessionOutcome::NonCompliant => {
                        // A signed REJECT is a clean rejection — legal
                        // only when the verdict is genuine (signature
                        // verified by the tenant's client).
                        assert!(
                            report.client_verified,
                            "{}: unverifiable rejection for {}",
                            kind.name(),
                            report.name
                        );
                    }
                    SessionOutcome::Evicted { .. }
                    | SessionOutcome::Failed { .. }
                    | SessionOutcome::Shed => {}
                    SessionOutcome::Compliant => unreachable!(),
                }
            }
            // Any refusals must be the typed dead-pool error (worker
            // deaths can exhaust the fleet), never anything else.
            for e in &refused {
                assert!(
                    matches!(e, ServeError::PoolDead),
                    "{}: unexpected submit refusal {e}",
                    kind.name()
                );
            }
            if kind != FaultKind::WorkerDeath {
                assert!(refused.is_empty(), "{}: fleet died", kind.name());
            }

            // No post-fault EPC residue: every enclave a faulted
            // session touched was torn down.
            for shard in &result.shards {
                assert_eq!(
                    shard.provider().session_count(),
                    0,
                    "{}: leaked session",
                    kind.name()
                );
                assert_eq!(
                    shard.provider().host().machine().epc_used_pages(),
                    0,
                    "{}: leaked EPC pages",
                    kind.name()
                );
            }

            // The lifecycle counters saw every injection and detection.
            let stats = result.metrics.fault_stats().kind(kind);
            assert!(stats.injected > 0, "{}: nothing injected", kind.name());
            assert_eq!(
                stats.detected,
                stats.injected,
                "{}: injected faults went undetected",
                kind.name()
            );
            assert_eq!(
                stats.recovered,
                0,
                "{}: recovery without retries",
                kind.name()
            );
        }
    }
}

#[test]
fn recoverable_faults_are_retried_to_verdicts() {
    let traffic = chaos_fleet(4, 3, 0xFA11);
    let run = SessionRunConfig {
        retry_budget: 3,
        backoff_base_cycles: 20_000,
        ..SessionRunConfig::default()
    };
    let plan = FaultPlan {
        seed: 11,
        mix: FaultMix::only(FaultKind::CorruptBlock, 1000),
    };
    let (result, refused) = run_with_plan(&traffic, 0xFA12, Some(plan), run);
    assert!(refused.is_empty());
    assert!(
        result.reports.iter().all(|r| r.reached_verdict()),
        "retries must recover every corrupted transfer"
    );
    assert!(result.reports.iter().all(|r| r.retries >= 1));
    let stats = result.metrics.fault_stats().kind(FaultKind::CorruptBlock);
    assert_eq!(stats.injected, traffic.len() as u64);
    assert_eq!(stats.recovered, stats.injected);
    assert!(stats.retried >= stats.injected);
    assert_eq!(stats.evicted, 0);
}

#[test]
fn fault_schedule_and_metrics_are_deterministic() {
    let traffic = chaos_fleet(4, 3, 0xFA21);
    let run = SessionRunConfig {
        retry_budget: 3,
        backoff_base_cycles: 20_000,
        ..SessionRunConfig::default()
    };
    let plan = FaultPlan {
        seed: 0xD00D,
        mix: FaultMix::transient(400),
    };
    let (a, _) = run_with_plan(&traffic, 0xFA22, Some(plan), run.clone());
    let (b, _) = run_with_plan(&traffic, 0xFA22, Some(plan), run);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "same plan seed must replay the identical run"
    );
    assert_eq!(a.metrics.fault_stats(), b.metrics.fault_stats());
    assert_eq!(a.metrics.counters(), b.metrics.counters());
}

#[test]
fn fault_free_run_with_layer_enabled_is_bit_identical() {
    let traffic = chaos_fleet(4, 3, 0xFA31);
    let run = SessionRunConfig::default();
    let (without, _) = run_with_plan(&traffic, 0xFA32, None, run.clone());
    let (with_disabled, _) =
        run_with_plan(&traffic, 0xFA32, Some(FaultPlan::disabled(0xD15A)), run);
    assert_eq!(
        without.fingerprint(),
        with_disabled.fingerprint(),
        "an idle fault layer must not perturb verdict fingerprints"
    );
    assert_eq!(
        with_disabled.metrics.fault_stats().totals().injected,
        0,
        "a disabled plan must inject nothing"
    );
}

/// A store config sealed under the fleet machine's inspector identity,
/// with tiny batches so even small fleets rotate multiple segments.
fn store_cfg(dir: &std::path::Path, seed: u64) -> StoreConfig {
    let spec = BootstrapSpec::new("EnGarde-1.0", LoaderConfig::default(), &[], 64, 512);
    StoreConfig {
        dir: dir.to_path_buf(),
        seal_key: store_seal_key(&machine(seed), &spec),
        flush_batch: 2,
        segment_max_records: 2,
        compact_on_drain: false,
        compact_live_per_mille: 0,
    }
}

#[test]
fn store_faults_recover_typed_and_never_touch_session_verdicts() {
    let traffic = chaos_fleet(3, 3, 0xFA41);
    let run = SessionRunConfig::default();

    for kind in [
        FaultKind::StoreTornWrite,
        FaultKind::StoreBitFlip,
        FaultKind::StoreLostSegment,
    ] {
        let tmp = TempDir::new(kind.name());
        let cfg = store_cfg(tmp.path(), 0xFA42);

        // Seed the store with a clean run so there is something at rest
        // to damage, then replay the same fleet under the store fault.
        let (clean, _) = run_with_store(&traffic, 0xFA42, None, run.clone(), cfg.clone());
        let plan = FaultPlan {
            seed: 0x5EED ^ kind.index() as u64,
            mix: FaultMix::only(kind, 1000),
        };
        let (faulted, refused) =
            run_with_store(&traffic, 0xFA42, Some(plan), run.clone(), cfg.clone());

        // At-rest damage never perturbs the sessions that produced the
        // verdicts: same signed outcomes as the clean run, no refusals.
        assert!(refused.is_empty(), "{}: fleet refused traffic", kind.name());
        assert_eq!(
            faulted.verdict_fingerprint(),
            clean.verdict_fingerprint(),
            "{}: store damage leaked into session verdicts",
            kind.name()
        );
        assert!(
            faulted.reports.iter().all(|r| r.reached_verdict()),
            "{}: a session failed to reach a verdict",
            kind.name()
        );

        // Typed lifecycle counters: every applied fault recovered via a
        // clean reopen; detection is claimed only for damage the scan
        // can actually see (losing the final segment leaves no gap).
        let stats = faulted.metrics.fault_stats().kind(kind);
        assert!(stats.injected > 0, "{}: nothing injected", kind.name());
        assert_eq!(
            stats.recovered,
            stats.injected,
            "{}: store recovery incomplete",
            kind.name()
        );
        assert!(
            stats.detected <= stats.injected,
            "{}: detected more than injected",
            kind.name()
        );
        if kind != FaultKind::StoreLostSegment {
            assert_eq!(
                stats.detected,
                stats.injected,
                "{}: in-segment damage must always be detected",
                kind.name()
            );
        }
        assert!(
            clean.metrics.store_stats().flushed > 0,
            "{}: seeding run flushed nothing",
            kind.name()
        );
        let snap = faulted.metrics.store_stats();
        assert!(snap.enabled, "{}: store not marked enabled", kind.name());
        assert!(
            snap.hydrated > 0,
            "{}: replay run hydrated nothing from the seeded store",
            kind.name()
        );
        if kind != FaultKind::StoreLostSegment {
            assert!(
                snap.torn_tail_truncations + snap.corrupt_records + snap.garbage_segments > 0,
                "{}: recovery scan reported no damage",
                kind.name()
            );
        }

        // The survivors are exactly the authenticated prefix: a fresh
        // open with the genuine key is clean, panic-free, and admits
        // only MAC-verified records.
        let (recovered, report) = engarde::store::VerdictStore::open(
            tmp.path(),
            &cfg.seal_key,
            engarde::store::StoreOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: post-fault open failed: {e}", kind.name()));
        assert_eq!(
            report.records_recovered,
            recovered.len() as u64,
            "{}: recovery count drifted from live store",
            kind.name()
        );

        // A third fleet restart over the damaged store hydrates without
        // panicking and only from authenticated records.
        let (rerun, rerun_refused) = run_with_store(&traffic, 0xFA42, None, run.clone(), cfg);
        assert!(rerun_refused.is_empty());
        assert_eq!(
            rerun.verdict_fingerprint(),
            clean.verdict_fingerprint(),
            "{}: warm restart over damaged store changed verdicts",
            kind.name()
        );
    }
}

#[test]
fn store_damage_never_yields_unauthenticated_verdicts_or_plaintext() {
    let traffic = chaos_fleet(3, 3, 0xFA51);
    let run = SessionRunConfig::default();
    let tmp = TempDir::new("foreign");
    let cfg = store_cfg(tmp.path(), 0xFA52);

    let plan = FaultPlan {
        seed: 0xB17,
        mix: FaultMix::only(FaultKind::StoreBitFlip, 1000),
    };
    let (result, refused) = run_with_store(&traffic, 0xFA52, Some(plan), run, cfg.clone());
    assert!(refused.is_empty());
    assert!(result.reports.iter().all(|r| r.reached_verdict()));

    // No plaintext at rest: the sealed segments never expose session
    // names or verdict detail strings, damaged or not.
    let mut raw = Vec::new();
    for entry in std::fs::read_dir(tmp.path()).expect("store dir readable") {
        raw.extend(std::fs::read(entry.expect("dir entry").path()).expect("segment readable"));
    }
    assert!(!raw.is_empty(), "store wrote no segments");
    for report in &result.reports {
        assert!(
            !raw.windows(report.name.len())
                .any(|w| w == report.name.as_bytes()),
            "plaintext session name {:?} found in sealed store",
            report.name
        );
    }

    // A foreign inspector identity (different machine seal key) admits
    // nothing: every segment fails authentication, typed and panic-free.
    let foreign = store_cfg(tmp.path(), 0xFA52 ^ 0xFF);
    match engarde::store::VerdictStore::open(
        tmp.path(),
        &foreign.seal_key,
        engarde::store::StoreOptions::default(),
    ) {
        Ok((store, report)) => {
            assert_eq!(store.len(), 0, "foreign key admitted sealed verdicts");
            assert_eq!(report.records_recovered, 0);
            assert!(
                report.found_damage(),
                "wholesale authentication failure must read as damage"
            );
        }
        Err(e) => panic!("foreign-key open must degrade typed, not error: {e}"),
    }
}

/// A plan whose only injection is a `WorkerDeath` on the very first
/// arrival — found by scanning seeds, so the schedule stays a pure
/// function of the plan and the test needs no targeting backdoor.
fn death_on_first_arrival_only(sessions: u64) -> FaultPlan {
    let mix = FaultMix::only(FaultKind::WorkerDeath, 120);
    for seed in 0..u64::MAX {
        let plan = FaultPlan { seed, mix };
        let first = plan
            .directive_for(0)
            .is_some_and(|d| d.kind == FaultKind::WorkerDeath);
        if first && (1..sessions).all(|i| plan.directive_for(i).is_none()) {
            return plan;
        }
    }
    unreachable!("some seed kills only arrival 0");
}

/// Runs a compliant fleet whose every session is *home-pinned* to
/// shard 0 through a four-shard virtual-time fleet: the worker-death ×
/// work-stealing worst case, where the victim's deque holds everything.
fn run_pinned_to_shard_zero(
    traffic: &[TrafficItem],
    seed: u64,
    plan: Option<FaultPlan>,
) -> (ServiceResult, Vec<ServeError>) {
    let musl = Arc::new(regimes::musl_hashes());
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 4,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_500_000,
        },
        machine: machine(seed),
        queue_capacity: 64,
        run: SessionRunConfig::default(),
        verdict_cache: None,
        faults: plan,
        store: None,
        batch: None,
        steal: true,
    });
    let mut refused = Vec::new();
    for item in traffic {
        let mut req = regimes::request_for(item, &musl);
        req.shard_hint = Some(0);
        if let Err(e) = svc.submit(req) {
            refused.push(e);
        }
    }
    (svc.drain(), refused)
}

#[test]
fn worker_death_deque_is_drained_by_stealing_peers() {
    let traffic = chaos_fleet(6, 3, 0xFA61);
    let plan = death_on_first_arrival_only(traffic.len() as u64);

    let (result, refused) = run_pinned_to_shard_zero(&traffic, 0xFA62, Some(plan));
    assert!(refused.is_empty(), "live peers must keep admitting");

    // The session that carried the death fails typed; every session
    // queued behind it on the dead shard's deque completes on a peer.
    assert!(
        matches!(&result.reports[0].outcome, SessionOutcome::Failed { error } if error.contains("worker")),
        "arrival 0 must surface the typed worker loss: {:?}",
        result.reports[0].outcome
    );
    for report in &result.reports[1..] {
        assert_eq!(
            report.outcome,
            SessionOutcome::Compliant,
            "{} was queued on the dead shard and must still reach its verdict",
            report.name
        );
        assert!(report.client_verified, "{}", report.name);
        assert_ne!(
            report.shard, 0,
            "{} cannot have run on the dead shard",
            report.name
        );
    }

    // Every survivor moved through the steal path, and the counters
    // attribute the drain to the dead victim.
    let sched = result.metrics.sched_stats();
    assert_eq!(sched.steals, traffic.len() as u64 - 1);
    assert_eq!(sched.drained_from_dead, traffic.len() as u64 - 1);
    assert_eq!(result.metrics.counters().workers_died, 1);

    // Zero EPC residue fleet-wide — dead shard included.
    for shard in &result.shards {
        assert_eq!(shard.provider().session_count(), 0);
        assert_eq!(shard.provider().host().machine().epc_used_pages(), 0);
    }

    // The drained schedule is still a pure function of the seeds:
    // replaying the death produces bit-identical verdict fingerprints.
    let (replay, _) = run_pinned_to_shard_zero(&traffic, 0xFA62, Some(plan));
    assert_eq!(
        result.fingerprint(),
        replay.fingerprint(),
        "steal-drained worker death must replay bit-identically"
    );
}

#[test]
fn retry_backoff_is_charged_to_the_session_cycle_budget() {
    // One compliant session, corrupted on its first attempt so it must
    // retry. The backoff base dwarfs the session budget: if backoff
    // cycles (base + jitter) were charged to the shard clock alone, the
    // retry would proceed and the session would complete; because they
    // land on the session's own budget, the service must evict it with
    // a typed `SessionBudgetExceeded` right after the backoff charge.
    let traffic = chaos_fleet(1, 3, 0xFA71);
    let plan = FaultPlan {
        seed: 21,
        mix: FaultMix::only(FaultKind::CorruptBlock, 1000),
    };
    let budget = 200_000_000u64;
    let budgeted = SessionRunConfig {
        retry_budget: 3,
        backoff_base_cycles: 1_000_000_000,
        session_cycle_budget: Some(budget),
        ..SessionRunConfig::default()
    };
    let (result, refused) = run_with_plan(&traffic, 0xFA72, Some(plan), budgeted);
    assert!(refused.is_empty());
    let report = &result.reports[0];
    assert_eq!(
        report.outcome,
        SessionOutcome::Evicted {
            reason: engarde::serve::EvictReason::SessionBudgetExceeded
        },
        "a backoff larger than the budget must evict, got {:?}",
        report.outcome
    );
    assert_eq!(report.retries, 1, "evicted on the first backoff");
    assert!(
        report.cycles > budget,
        "the backoff charge must be visible in the session's own cycle \
         account ({} cycles <= {budget} budget)",
        report.cycles
    );

    // Control: the identical fault and budget with backoff disabled
    // retries straight to a verdict — the eviction above is therefore
    // attributable to the backoff-and-jitter charge alone.
    let control = SessionRunConfig {
        retry_budget: 3,
        backoff_base_cycles: 0,
        session_cycle_budget: Some(budget),
        ..SessionRunConfig::default()
    };
    let (result, refused) = run_with_plan(&traffic, 0xFA72, Some(plan), control);
    assert!(refused.is_empty());
    assert!(
        result.reports[0].reached_verdict(),
        "without backoff the same fault fits the budget: {:?}",
        result.reports[0].outcome
    );
    assert!(result.reports[0].retries >= 1);
}
