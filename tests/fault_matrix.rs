//! The fault-injection matrix: every fault kind, against compliant and
//! adversarial chaos fleets, must uphold the serve-path invariant —
//! a typed error or clean rejection, never a panic, never a hang, and
//! never a signed PASS verdict over faulted traffic. A second set of
//! tests pins the determinism contract: the fault schedule and the
//! resulting metrics are pure functions of the plan seed, and a
//! fault-free run with the layer enabled is bit-identical to a run
//! without it.

use engarde::serve::faults::{FaultKind, FaultMix, FaultPlan};
use engarde::serve::service::{ProvisioningService, SchedMode, ServiceConfig, ServiceResult};
use engarde::serve::{regimes, ServeError, SessionOutcome, SessionRunConfig};
use engarde::sgx::instr::SgxVersion;
use engarde::sgx::machine::MachineConfig;
use engarde::workloads::traffic::{adversarial_chaos_fleet, chaos_fleet, TrafficItem};
use std::sync::Arc;

fn machine(seed: u64) -> MachineConfig {
    MachineConfig {
        epc_pages: 4_096,
        version: SgxVersion::V2,
        device_key_bits: 512,
        seed,
    }
}

/// Runs `traffic` through a two-shard virtual-time fleet under `plan`,
/// returning the result plus any typed submit rejections (a fully dead
/// fleet refuses admission with `PoolDead`; that is the invariant
/// working, not a failure of it).
fn run_with_plan(
    traffic: &[TrafficItem],
    seed: u64,
    plan: Option<FaultPlan>,
    run: SessionRunConfig,
) -> (ServiceResult, Vec<ServeError>) {
    let musl = Arc::new(regimes::musl_hashes());
    let mut svc = ProvisioningService::start(ServiceConfig {
        shards: 2,
        mode: SchedMode::VirtualTime {
            arrival_gap: 1_500_000,
        },
        machine: machine(seed),
        queue_capacity: 64,
        run,
        verdict_cache: None,
        faults: plan,
    });
    let mut refused = Vec::new();
    for item in traffic {
        if let Err(e) = svc.submit(regimes::request_for(item, &musl)) {
            refused.push(e);
        }
    }
    (svc.drain(), refused)
}

#[test]
fn every_fault_kind_yields_typed_outcome_never_a_signed_pass() {
    let compliant = chaos_fleet(3, 3, 0xFA01);
    let adversarial = adversarial_chaos_fleet(3, 0xFA02);
    // No retries: the injected fault's first typed error is terminal,
    // so every kind's detection path is visible in the outcome.
    let run = SessionRunConfig {
        retry_budget: 0,
        ..SessionRunConfig::default()
    };

    for kind in FaultKind::ALL {
        for (fleet_name, traffic) in [("compliant", &compliant), ("adversarial", &adversarial)] {
            let plan = FaultPlan {
                seed: 0x5EED ^ kind.index() as u64,
                mix: FaultMix::only(kind, 1000),
            };
            let (result, refused) = run_with_plan(traffic, 0xFA03, Some(plan), run.clone());

            // Reaching this line at all is the no-panic / no-hang half
            // of the invariant; the outcomes are the no-signed-PASS half.
            for report in &result.reports {
                assert_ne!(
                    report.outcome,
                    SessionOutcome::Compliant,
                    "{} fault on {fleet_name} fleet signed a PASS for {}",
                    kind.name(),
                    report.name
                );
                match &report.outcome {
                    SessionOutcome::NonCompliant => {
                        // A signed REJECT is a clean rejection — legal
                        // only when the verdict is genuine (signature
                        // verified by the tenant's client).
                        assert!(
                            report.client_verified,
                            "{}: unverifiable rejection for {}",
                            kind.name(),
                            report.name
                        );
                    }
                    SessionOutcome::Evicted { .. }
                    | SessionOutcome::Failed { .. }
                    | SessionOutcome::Shed => {}
                    SessionOutcome::Compliant => unreachable!(),
                }
            }
            // Any refusals must be the typed dead-pool error (worker
            // deaths can exhaust the fleet), never anything else.
            for e in &refused {
                assert!(
                    matches!(e, ServeError::PoolDead),
                    "{}: unexpected submit refusal {e}",
                    kind.name()
                );
            }
            if kind != FaultKind::WorkerDeath {
                assert!(refused.is_empty(), "{}: fleet died", kind.name());
            }

            // No post-fault EPC residue: every enclave a faulted
            // session touched was torn down.
            for shard in &result.shards {
                assert_eq!(
                    shard.provider().session_count(),
                    0,
                    "{}: leaked session",
                    kind.name()
                );
                assert_eq!(
                    shard.provider().host().machine().epc_used_pages(),
                    0,
                    "{}: leaked EPC pages",
                    kind.name()
                );
            }

            // The lifecycle counters saw every injection and detection.
            let stats = result.metrics.fault_stats().kind(kind);
            assert!(stats.injected > 0, "{}: nothing injected", kind.name());
            assert_eq!(
                stats.detected,
                stats.injected,
                "{}: injected faults went undetected",
                kind.name()
            );
            assert_eq!(
                stats.recovered,
                0,
                "{}: recovery without retries",
                kind.name()
            );
        }
    }
}

#[test]
fn recoverable_faults_are_retried_to_verdicts() {
    let traffic = chaos_fleet(4, 3, 0xFA11);
    let run = SessionRunConfig {
        retry_budget: 3,
        backoff_base_cycles: 20_000,
        ..SessionRunConfig::default()
    };
    let plan = FaultPlan {
        seed: 11,
        mix: FaultMix::only(FaultKind::CorruptBlock, 1000),
    };
    let (result, refused) = run_with_plan(&traffic, 0xFA12, Some(plan), run);
    assert!(refused.is_empty());
    assert!(
        result.reports.iter().all(|r| r.reached_verdict()),
        "retries must recover every corrupted transfer"
    );
    assert!(result.reports.iter().all(|r| r.retries >= 1));
    let stats = result.metrics.fault_stats().kind(FaultKind::CorruptBlock);
    assert_eq!(stats.injected, traffic.len() as u64);
    assert_eq!(stats.recovered, stats.injected);
    assert!(stats.retried >= stats.injected);
    assert_eq!(stats.evicted, 0);
}

#[test]
fn fault_schedule_and_metrics_are_deterministic() {
    let traffic = chaos_fleet(4, 3, 0xFA21);
    let run = SessionRunConfig {
        retry_budget: 3,
        backoff_base_cycles: 20_000,
        ..SessionRunConfig::default()
    };
    let plan = FaultPlan {
        seed: 0xD00D,
        mix: FaultMix::transient(400),
    };
    let (a, _) = run_with_plan(&traffic, 0xFA22, Some(plan), run.clone());
    let (b, _) = run_with_plan(&traffic, 0xFA22, Some(plan), run);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "same plan seed must replay the identical run"
    );
    assert_eq!(a.metrics.fault_stats(), b.metrics.fault_stats());
    assert_eq!(a.metrics.counters(), b.metrics.counters());
}

#[test]
fn fault_free_run_with_layer_enabled_is_bit_identical() {
    let traffic = chaos_fleet(4, 3, 0xFA31);
    let run = SessionRunConfig::default();
    let (without, _) = run_with_plan(&traffic, 0xFA32, None, run.clone());
    let (with_disabled, _) =
        run_with_plan(&traffic, 0xFA32, Some(FaultPlan::disabled(0xD15A)), run);
    assert_eq!(
        without.fingerprint(),
        with_disabled.fingerprint(),
        "an idle fault layer must not perturb verdict fingerprints"
    );
    assert_eq!(
        with_disabled.metrics.fault_stats().totals().injected,
        0,
        "a disabled plan must inject nothing"
    );
}
