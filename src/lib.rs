//! # engarde
//!
//! Umbrella crate for the EnGarde stack — a from-scratch Rust
//! reproduction of *EnGarde: Mutually-Trusted Inspection of SGX Enclaves*
//! (Nguyen & Ganapathy, ICDCS 2017).
//!
//! EnGarde lets a cloud provider and a mutually-distrusting client agree
//! on policies an enclave's code must satisfy; an attested in-enclave
//! inspector enforces them at provisioning time with zero runtime
//! overhead. This crate re-exports the whole stack:
//!
//! - [`rand`] — self-contained deterministic randomness (ChaCha20 DRBG)
//!   plus the in-tree property-test harness,
//! - [`crypto`] — SHA-256/HMAC/AES/RSA + the provisioning channel,
//! - [`elf`] — ELF64 reader/writer,
//! - [`x86`] — x86-64 decoder/encoder + NaCl validation,
//! - [`sgx`] — the software SGX machine (OpenSGX stand-in),
//! - [`workloads`] — synthetic paper benchmarks,
//! - [`store`] — the sealed, crash-safe persistent verdict store,
//! - [`serve`] — the concurrent multi-tenant provisioning service,
//! - the EnGarde core modules ([`provider`], [`client`], [`policy`], …).
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for the full provisioning flow, or the
//! end-to-end example on [`provider::CloudProvider`]'s crate
//! (`engarde-core`) documentation.
//!
//! ```
//! use engarde::workloads::bench_suite::{PaperBenchmark, PolicyFigure};
//!
//! let nginx = PaperBenchmark::by_name("Nginx").expect("in the suite");
//! assert_eq!(nginx.instructions_for(PolicyFigure::Fig3LibraryLinking), 262_228);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use engarde_crypto as crypto;
pub use engarde_elf as elf;
pub use engarde_rand as rand;
pub use engarde_serve as serve;
pub use engarde_sgx as sgx;
pub use engarde_store as store;
pub use engarde_workloads as workloads;
pub use engarde_x86 as x86;

pub use engarde_core::{
    client, error, exec, loader, policy, protocol, provider, provision, relocate, rewrite, symbols,
    EngardeError, MUSL_DB_VERSION,
};
